//! Byte-addressable backing stores.
//!
//! A [`Region`] is the *data* half of a simulated memory device: a flat
//! byte array that real reads and writes hit with real `memcpy`s. Timing
//! is charged by the access layers ([`crate::cxl`], [`crate::rdma`],
//! [`crate::dram`]); the region itself only stores bytes and knows whether
//! it survives a host crash (the CXL memory box has its own PSU, §3.2).

use std::fmt;

/// A flat, byte-addressable memory region.
pub struct Region {
    bytes: Vec<u8>,
    /// Whether contents survive a simulated host crash.
    persistent: bool,
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Region")
            .field("len", &self.bytes.len())
            .field("persistent", &self.persistent)
            .finish()
    }
}

impl Region {
    /// A volatile region (host DRAM): wiped by [`Region::crash`].
    pub fn volatile(len: usize) -> Self {
        Region {
            bytes: vec![0; len],
            persistent: false,
        }
    }

    /// A crash-persistent region (CXL memory box behind its own PSU).
    pub fn persistent(len: usize) -> Self {
        Region {
            bytes: vec![0; len],
            persistent: true,
        }
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Whether this region survives host crashes.
    pub fn is_persistent(&self) -> bool {
        self.persistent
    }

    /// Copy `buf.len()` bytes starting at `off` into `buf`.
    ///
    /// # Panics
    /// On out-of-bounds access — a simulated wild pointer is a bug in the
    /// caller, not a recoverable condition.
    #[inline]
    pub fn read(&self, off: u64, buf: &mut [u8]) {
        let off = off as usize;
        buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
    }

    /// Copy `data` into the region starting at `off`.
    #[inline]
    pub fn write(&mut self, off: u64, data: &[u8]) {
        let off = off as usize;
        self.bytes[off..off + data.len()].copy_from_slice(data);
    }

    /// Borrow a slice of the region (zero-copy read path for hot loops).
    #[inline]
    pub fn slice(&self, off: u64, len: usize) -> &[u8] {
        let off = off as usize;
        &self.bytes[off..off + len]
    }

    /// Mutably borrow a slice of the region.
    #[inline]
    pub fn slice_mut(&mut self, off: u64, len: usize) -> &mut [u8] {
        let off = off as usize;
        &mut self.bytes[off..off + len]
    }

    /// Zero a byte range.
    pub fn zero(&mut self, off: u64, len: usize) {
        let off = off as usize;
        self.bytes[off..off + len].fill(0);
    }

    /// Simulate a host power loss: volatile regions are wiped (and the
    /// wipe pattern is deliberately non-zero so "accidentally reading
    /// crashed memory" fails loudly in tests); persistent regions keep
    /// their contents.
    pub fn crash(&mut self) {
        if !self.persistent {
            self.bytes.fill(0xDE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut r = Region::volatile(1024);
        r.write(100, b"hello");
        let mut buf = [0u8; 5];
        r.read(100, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn slices_alias_storage() {
        let mut r = Region::persistent(64);
        r.slice_mut(0, 4).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(r.slice(0, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn crash_wipes_volatile_only() {
        let mut v = Region::volatile(16);
        let mut p = Region::persistent(16);
        v.write(0, &[7; 16]);
        p.write(0, &[7; 16]);
        v.crash();
        p.crash();
        assert_eq!(v.slice(0, 16), &[0xDE; 16]);
        assert_eq!(p.slice(0, 16), &[7; 16]);
    }

    #[test]
    fn zero_clears_range() {
        let mut r = Region::volatile(32);
        r.write(0, &[9; 32]);
        r.zero(8, 8);
        assert_eq!(r.slice(7, 1), &[9]);
        assert_eq!(r.slice(8, 8), &[0; 8]);
        assert_eq!(r.slice(16, 1), &[9]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let r = Region::volatile(8);
        let mut buf = [0u8; 4];
        r.read(6, &mut buf);
    }
}
