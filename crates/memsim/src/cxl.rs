//! The CXL-switch memory pool (§2.3, Figure 5).
//!
//! A [`CxlPool`] bundles the shared memory region in the CXL memory box,
//! the aggregate switch fabric, one x16 host link per host, and one CPU
//! cache per attached node. All node accesses flow through here so that
//! latency (Table 1), streaming cost (Table 2), link bandwidth and cache
//! behaviour are charged consistently.
//!
//! Two access paths exist, matching how the database uses the hardware:
//! - **cached** loads/stores ([`CxlPool::read`]/[`CxlPool::write`]) for
//!   page data — fast when hot, but dirty lines live in the CPU cache
//!   until written back or `clflush`ed;
//! - **uncached** accesses ([`CxlPool::read_uncached`]/
//!   [`CxlPool::write_uncached`]) for metadata flags (lock state, LSN,
//!   invalid/removal flags) that must be immediately visible to other
//!   nodes and survive a crash (non-temporal stores).
//!
//! For barrier-synchronized parallel stepping ([`simkit::par`]) a node's
//! attachment can be *detached* into a [`CxlShard`]: the node's cache
//! moves out of the pool, the shared switch and host links are replaced
//! by [`LinkFork`] proxies, and region accesses run against a
//! [`RegionReader`] + [`WriteLog`] pair. [`CxlPool::barrier`] folds every
//! shard's deltas back in fixed order. Both the pool and its shards run
//! the *same* operation bodies (the internal `Port`), so the two modes
//! cannot drift apart.

use crate::cache::{Cache, LineAccess};
use crate::calib::{
    CACHE_HIT_NS, CACHE_LINE, CLFLUSH_ISSUE_NS, CXL_COPY_READ_BASE_NS, CXL_COPY_WRITE_BASE_NS,
    CXL_HOST_LINK_GBPS, CXL_HW_SNOOP_NS, CXL_STREAM_READ_NS_PER_LINE, CXL_STREAM_WRITE_NS_PER_LINE,
    CXL_SWITCH_GBPS, CXL_SWITCH_LOCAL_NS, CXL_SWITCH_REMOTE_NS,
};
use crate::region::Region;
use crate::shard::{RegionReader, WriteLog};
use crate::{Access, NodeId};
use simkit::faults::{self, FaultSite, Verdict};
use simkit::trace::{self, Lane, SpanKind};
use simkit::{Link, LinkFork, SimTime};
use std::borrow::Borrow;

/// Attribution/span leaf for one CXL operation. The op's total latency
/// `end - now` decomposes exactly: `switch_ns` is the wait beyond the
/// host-link stage (from `charge_link`), cache-hit service is
/// `hits * CACHE_HIT_NS` (every latency formula includes that term), and
/// the remainder is fabric/link time. One inlined flag test when tracing
/// is off; the slow path never feeds back into simulated state.
#[inline]
fn note_cxl(
    kind: SpanKind,
    node: NodeId,
    now: SimTime,
    end: SimTime,
    link_bytes: u64,
    hits: u64,
    switch_ns: u64,
) {
    if trace::active() {
        note_cxl_slow(kind, node, now, end, link_bytes, hits, switch_ns);
    }
}

#[cold]
fn note_cxl_slow(
    kind: SpanKind,
    node: NodeId,
    now: SimTime,
    end: SimTime,
    link_bytes: u64,
    hits: u64,
    switch_ns: u64,
) {
    let total = end.saturating_since(now);
    let cache = (hits * CACHE_HIT_NS).min(total.saturating_sub(switch_ns));
    trace::attr_add(Lane::CacheHit, cache);
    trace::attr_add(Lane::Switch, switch_ns);
    trace::attr_add(Lane::CxlLink, total - switch_ns - cache);
    trace::span(kind, node.0 as u32, now, end, link_bytes);
}

#[inline]
fn line_range(off: u64, len: usize) -> std::ops::Range<u64> {
    off / CACHE_LINE..(off + len as u64).div_ceil(CACHE_LINE)
}

/// Per-node attachment configuration.
#[derive(Debug, Clone, Copy)]
pub struct CxlNodeConfig {
    /// Which host (and therefore which x16 link) the node runs on.
    pub host: usize,
    /// CPU cache capacity dedicated to this node's CXL traffic.
    pub cache_bytes: usize,
    /// Whether the cache captures line data (required for coherency
    /// experiments; see [`crate::cache`]).
    pub capture: bool,
    /// Whether the node's CPUs sit on a remote NUMA socket relative to
    /// the CXL attach point (Table 1's "remote" column).
    pub remote_numa: bool,
    /// Direct-attached CXL (no switch): Table 1's lower latency row.
    /// Pooling/sharing require the switch; this models the counterfactual
    /// for the §2.3 claim that switch latency is negligible end-to-end.
    pub direct_attach: bool,
}

impl Default for CxlNodeConfig {
    fn default() -> Self {
        CxlNodeConfig {
            host: 0,
            cache_bytes: 32 << 20,
            capture: false,
            remote_numa: false,
            direct_attach: false,
        }
    }
}

/// Where a port's loads and stores land: the real region (serial mode)
/// or a phase-private reader/write-log pair (shard mode).
enum Mem<'a> {
    Direct(&'a mut Region),
    Logged(&'a RegionReader, &'a mut WriteLog),
}

impl Mem<'_> {
    #[inline]
    fn read(&self, off: u64, buf: &mut [u8]) {
        match self {
            Mem::Direct(r) => r.read(off, buf),
            // Read-your-own-writes: patch the node's pending stores over
            // the (≤ one quantum stale) base bytes.
            Mem::Logged(base, log) => log.read_through(base, off, buf),
        }
    }

    #[inline]
    fn write(&mut self, off: u64, data: &[u8]) {
        match self {
            Mem::Direct(r) => r.write(off, data),
            Mem::Logged(_, log) => log.write(off, data),
        }
    }
}

/// One node's view of the fabric: its cache, its host link, the switch,
/// and a memory target. Every timed CXL operation body lives here, so
/// [`CxlPool`] (serial, `Mem::Direct`) and [`CxlShard`] (phased,
/// `Mem::Logged`) execute literally the same code.
struct Port<'a> {
    node: NodeId,
    host: usize,
    remote: bool,
    direct: bool,
    cache: &'a mut Cache,
    host_link: &'a mut Link,
    switch: &'a mut Link,
    mem: Mem<'a>,
}

impl Port<'_> {
    /// Latency adjustment for the node's attach point: NUMA distance adds
    /// the Table 1 remote premium; direct attach removes the switch hop.
    #[inline]
    fn attach_delta_ns(&self) -> i64 {
        let mut delta = 0i64;
        if self.remote {
            delta += (CXL_SWITCH_REMOTE_NS - CXL_SWITCH_LOCAL_NS) as i64;
        }
        if self.direct {
            delta -= (CXL_SWITCH_LOCAL_NS - crate::calib::CXL_DIRECT_LOCAL_NS) as i64;
        }
        delta
    }

    #[inline]
    fn base_read_ns(&self) -> u64 {
        (CXL_COPY_READ_BASE_NS as i64 + self.attach_delta_ns()) as u64
    }

    #[inline]
    fn base_write_ns(&self) -> u64 {
        (CXL_COPY_WRITE_BASE_NS as i64 + self.attach_delta_ns()) as u64
    }

    /// Charge `bytes` to the node's host link and the switch. Returns the
    /// completion time and how many ns of it are waiting on the *switch*
    /// stage beyond the host-link stage (the [`Lane::Switch`] share —
    /// zero until the switch itself is the bottleneck).
    fn charge_link(&mut self, now: SimTime, bytes: u64, latency_ns: u64) -> (SimTime, u64) {
        if bytes == 0 {
            return (now + latency_ns, 0);
        }
        let mut now = now;
        let mut latency_ns = latency_ns;
        match faults::link_health(faults::FaultSite::CxlLink, self.host as u32, now) {
            faults::LinkHealth::Healthy => {}
            faults::LinkHealth::Degraded { factor } => latency_ns *= factor as u64,
            faults::LinkHealth::Down { until, .. } => {
                // The link is out: the op stalls until it returns, then
                // completes at normal speed (CXL loads/stores have no
                // software retry path — the fabric replays them).
                now = now.max(until);
            }
        }
        let lat_end = now + latency_ns;
        let g1 = self.host_link.transfer(now, bytes);
        let g2 = self.switch.transfer(now, bytes);
        let base = lat_end.max(g1.end);
        let end = base.max(g2.end);
        (end, end.saturating_since(base))
    }

    /// Serve a read from the host's frozen post-crash view: cached line
    /// data where the (captured) cache still holds it, device bytes
    /// elsewhere — with no cache, LRU or link mutation and no timing.
    #[cold]
    fn frozen_read(&mut self, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        self.mem.read(off, buf);
        if self.cache.captures() {
            let end_off = off + buf.len() as u64;
            for line in line_range(off, buf.len()) {
                let line_start = line * CACHE_LINE;
                let copy_from = off.max(line_start);
                let copy_to = end_off.min(line_start + CACHE_LINE);
                if let Some(data) = self.cache.line(line) {
                    let s = (copy_from - line_start) as usize;
                    let dst = &mut buf[(copy_from - off) as usize..(copy_to - off) as usize];
                    dst.copy_from_slice(&data[s..s + dst.len()]);
                }
            }
        }
        Access::free(now)
    }

    /// Cached read of `buf.len()` bytes at `off`.
    fn read(&mut self, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        let now = match faults::gate(FaultSite::CxlRead, now) {
            // A poisoned line is reported to the consumer through the
            // pending-poison flag; the raw bytes still transfer so the
            // pool's own accounting is undisturbed.
            Verdict::Run | Verdict::Poison => now,
            // A transient fabric hiccup delays the load; it still runs.
            Verdict::Transient { spike_ns } => now + spike_ns,
            _ => return self.frozen_read(off, buf, now),
        };
        if !self.cache.captures() {
            // Timing-mode fast path: one tag sweep over the whole run, one
            // bulk copy, one link charge. In timing mode the region always
            // holds current data (capture mode is what defers stores), so
            // the per-line copies below collapse to a single bulk read
            // and the latency/link formulas depend only on the hit/miss/
            // eviction counts the sweep returns. Batched-vs-reference
            // equivalence is pinned by the `batched_*` tests.
            let run = self.cache.access_run(line_range(off, buf.len()), false);
            self.mem.read(off, buf);
            let link_bytes = (run.misses + run.dirty_evictions) * CACHE_LINE;
            let latency = if run.misses == 0 {
                run.hits * CACHE_HIT_NS
            } else {
                self.base_read_ns()
                    + (run.misses - 1) * CXL_STREAM_READ_NS_PER_LINE
                    + run.hits * CACHE_HIT_NS
            };
            let (end, switch_ns) = self.charge_link(now, link_bytes, latency);
            note_cxl(
                SpanKind::CxlRead,
                self.node,
                now,
                end,
                link_bytes,
                run.hits,
                switch_ns,
            );
            return Access {
                end,
                link_bytes,
                hits: run.hits,
                misses: run.misses,
            };
        }
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut link_bytes = 0u64;
        let end_off = off + buf.len() as u64;
        for line in line_range(off, buf.len()) {
            let line_start = line * CACHE_LINE;
            let copy_from = off.max(line_start);
            let copy_to = end_off.min(line_start + CACHE_LINE);
            let dst = &mut buf[(copy_from - off) as usize..(copy_to - off) as usize];
            match self.cache.access(line, false) {
                LineAccess::Hit => {
                    hits += 1;
                    if let Some(data) = self.cache.line(line) {
                        let s = (copy_from - line_start) as usize;
                        dst.copy_from_slice(&data[s..s + dst.len()]);
                    } else {
                        self.mem.read(copy_from, dst);
                    }
                }
                LineAccess::Miss { evicted_dirty } => {
                    misses += 1;
                    link_bytes += CACHE_LINE;
                    if let Some(victim) = evicted_dirty {
                        link_bytes += CACHE_LINE;
                        if let Some(bytes) = self.cache.take_line(victim) {
                            self.mem.write(victim * CACHE_LINE, &bytes);
                        }
                    }
                    if self.cache.captures() {
                        let mut fill = [0u8; CACHE_LINE as usize];
                        self.mem.read(line_start, &mut fill);
                        let s = (copy_from - line_start) as usize;
                        dst.copy_from_slice(&fill[s..s + dst.len()]);
                        self.cache.put_line(line, &fill);
                    } else {
                        self.mem.read(copy_from, dst);
                    }
                }
            }
        }
        let latency = if misses == 0 {
            hits * CACHE_HIT_NS
        } else {
            self.base_read_ns()
                + misses.saturating_sub(1) * CXL_STREAM_READ_NS_PER_LINE
                + hits * CACHE_HIT_NS
        };
        let (end, switch_ns) = self.charge_link(now, link_bytes, latency);
        note_cxl(
            SpanKind::CxlRead,
            self.node,
            now,
            end,
            link_bytes,
            hits,
            switch_ns,
        );
        Access {
            end,
            link_bytes,
            hits,
            misses,
        }
    }

    /// Cached write of `data` at `off` (write-allocate, write-back:
    /// dirty lines stay in the node's cache).
    fn write(&mut self, off: u64, data: &[u8], now: SimTime) -> Access {
        if faults::crashed() {
            // Dead host: its stores touch neither cache nor device.
            return Access::free(now);
        }
        if !self.cache.captures() {
            // Timing-mode fast path (see `read`). The only per-line detail
            // that survives batching is write-allocate accounting: a missed
            // line is fetched over the link unless the store covers all 64
            // bytes, which can only be false for the first and last lines
            // of the run.
            let lines = line_range(off, data.len());
            let single_line = lines.end - lines.start == 1;
            let run = self.cache.access_run(lines, true);
            self.mem.write(off, data);
            let end_off = off + data.len() as u64;
            let first_partial = !off.is_multiple_of(CACHE_LINE);
            let last_partial = !end_off.is_multiple_of(CACHE_LINE);
            let fetches = if single_line {
                u64::from(run.first_missed && (first_partial || last_partial))
            } else {
                u64::from(run.first_missed && first_partial)
                    + u64::from(run.last_missed && last_partial)
            };
            let link_bytes = (fetches + run.dirty_evictions) * CACHE_LINE;
            let latency = if run.misses == 0 {
                run.hits * CACHE_HIT_NS
            } else {
                self.base_write_ns()
                    + (run.misses - 1) * CXL_STREAM_WRITE_NS_PER_LINE
                    + run.hits * CACHE_HIT_NS
            };
            let (end, switch_ns) = self.charge_link(now, link_bytes, latency);
            note_cxl(
                SpanKind::CxlWrite,
                self.node,
                now,
                end,
                link_bytes,
                run.hits,
                switch_ns,
            );
            return Access {
                end,
                link_bytes,
                hits: run.hits,
                misses: run.misses,
            };
        }
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut link_bytes = 0u64;
        let end_off = off + data.len() as u64;
        for line in line_range(off, data.len()) {
            let line_start = line * CACHE_LINE;
            let copy_from = off.max(line_start);
            let copy_to = end_off.min(line_start + CACHE_LINE);
            let src = &data[(copy_from - off) as usize..(copy_to - off) as usize];
            match self.cache.access(line, true) {
                LineAccess::Hit => {
                    hits += 1;
                    let s = (copy_from - line_start) as usize;
                    if let Some(cached) = self.cache.line_mut(line) {
                        cached[s..s + src.len()].copy_from_slice(src);
                    } else {
                        self.mem.write(copy_from, src);
                    }
                }
                LineAccess::Miss { evicted_dirty } => {
                    misses += 1;
                    // Write-allocate: the line is fetched before modification
                    // unless the store covers it entirely.
                    if src.len() < CACHE_LINE as usize {
                        link_bytes += CACHE_LINE;
                    }
                    if let Some(victim) = evicted_dirty {
                        link_bytes += CACHE_LINE;
                        if let Some(bytes) = self.cache.take_line(victim) {
                            self.mem.write(victim * CACHE_LINE, &bytes);
                        }
                    }
                    if self.cache.captures() {
                        let mut fill = [0u8; CACHE_LINE as usize];
                        self.mem.read(line_start, &mut fill);
                        let s = (copy_from - line_start) as usize;
                        fill[s..s + src.len()].copy_from_slice(src);
                        self.cache.put_line(line, &fill);
                    } else {
                        self.mem.write(copy_from, src);
                    }
                }
            }
        }
        let latency = if misses == 0 {
            hits * CACHE_HIT_NS
        } else {
            self.base_write_ns()
                + misses.saturating_sub(1) * CXL_STREAM_WRITE_NS_PER_LINE
                + hits * CACHE_HIT_NS
        };
        let (end, switch_ns) = self.charge_link(now, link_bytes, latency);
        note_cxl(
            SpanKind::CxlWrite,
            self.node,
            now,
            end,
            link_bytes,
            hits,
            switch_ns,
        );
        Access {
            end,
            link_bytes,
            hits,
            misses,
        }
    }

    /// Uncached read (metadata flags): always goes to the device,
    /// observing other nodes' non-temporal stores immediately.
    fn read_uncached(&mut self, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        if faults::crashed() {
            // Dead host: the device view is frozen; serve it untimed.
            self.mem.read(off, buf);
            return Access::free(now);
        }
        // Drop any locally cached copies so a later cached read refetches.
        for line in line_range(off, buf.len()) {
            if self.cache.clflush(line) {
                if let Some(bytes) = self.cache.take_line(line) {
                    self.mem.write(line * CACHE_LINE, &bytes);
                }
            }
        }
        self.mem.read(off, buf);
        let lines = line_range(off, buf.len()).count() as u64;
        let link_bytes = lines * CACHE_LINE;
        let latency = self.base_read_ns() + (lines - 1) * CXL_STREAM_READ_NS_PER_LINE;
        let (end, switch_ns) = self.charge_link(now, link_bytes, latency);
        note_cxl(
            SpanKind::CxlRead,
            self.node,
            now,
            end,
            link_bytes,
            0,
            switch_ns,
        );
        Access {
            end,
            link_bytes,
            hits: 0,
            misses: lines,
        }
    }

    /// Uncached (non-temporal) store: bytes land in the device directly
    /// and become visible to every node; local cache copies are dropped.
    fn write_uncached(&mut self, off: u64, data: &[u8], now: SimTime) -> Access {
        let now = match faults::gate(FaultSite::CxlNtStore, now) {
            Verdict::Run => now,
            // A transient fabric hiccup delays the store; it still lands.
            Verdict::Transient { spike_ns } => now + spike_ns,
            // Dead (or the crash landed on this very store): the
            // non-temporal store never reaches the device. Crashing
            // between the ntstores of a list splice is exactly how a
            // torn `list_lock != 0` state arises.
            _ => return Access::free(now),
        };
        for line in line_range(off, data.len()) {
            // An ntstore invalidates the local cached copy. A *dirty*
            // overlapping line must be written back first: the store may
            // cover it only partially, and dropping it would lose the
            // non-overlapped dirty bytes (found by the property tests).
            if self.cache.clflush(line) {
                if let Some(bytes) = self.cache.take_line(line) {
                    self.mem.write(line * CACHE_LINE, &bytes);
                }
            }
        }
        self.mem.write(off, data);
        let lines = line_range(off, data.len()).count() as u64;
        let link_bytes = lines * CACHE_LINE;
        let latency = self.base_write_ns() + (lines - 1) * CXL_STREAM_WRITE_NS_PER_LINE;
        let (end, switch_ns) = self.charge_link(now, link_bytes, latency);
        note_cxl(
            SpanKind::CxlWrite,
            self.node,
            now,
            end,
            link_bytes,
            0,
            switch_ns,
        );
        Access {
            end,
            link_bytes,
            hits: 0,
            misses: lines,
        }
    }

    /// `clflush` the byte range: write back dirty lines and invalidate all
    /// cached lines (the §3.3 protocol's publish / self-invalidate step).
    fn clflush(&mut self, off: u64, len: usize, now: SimTime) -> Access {
        let now = match faults::gate(FaultSite::Clflush, now) {
            Verdict::Run => now,
            // A transient fabric hiccup delays the flush; it still runs.
            Verdict::Transient { spike_ns } => now + spike_ns,
            Verdict::Partial { keep_lines } => {
                return self.partial_clflush(off, len, keep_lines, now)
            }
            _ => return Access::free(now),
        };
        let mut flushed = 0u64;
        let mut issued = 0u64;
        for line in line_range(off, len) {
            issued += 1;
            if self.cache.clflush(line) {
                flushed += 1;
                if let Some(bytes) = self.cache.take_line(line) {
                    self.mem.write(line * CACHE_LINE, &bytes);
                }
            }
        }
        let link_bytes = flushed * CACHE_LINE;
        let latency = issued * CLFLUSH_ISSUE_NS
            + if flushed > 0 {
                self.base_write_ns() + (flushed - 1) * CXL_STREAM_WRITE_NS_PER_LINE
            } else {
                0
            };
        let (end, switch_ns) = self.charge_link(now, link_bytes, latency);
        note_cxl(
            SpanKind::Clflush,
            self.node,
            now,
            end,
            link_bytes,
            0,
            switch_ns,
        );
        Access {
            end,
            link_bytes,
            hits: 0,
            misses: flushed,
        }
    }

    /// A clflush torn `keep_lines` dirty lines in: those lines reach the
    /// device, the rest stay unflushed in the (dying) CPU cache.
    /// Injected by [`simkit::faults`]; the caller observes the crash via
    /// [`simkit::faults::crashed`] and runs the real crash path.
    #[cold]
    fn partial_clflush(&mut self, off: u64, len: usize, keep_lines: u64, now: SimTime) -> Access {
        let mut flushed = 0u64;
        for line in line_range(off, len) {
            if flushed >= keep_lines {
                break;
            }
            if self.cache.clflush(line) {
                flushed += 1;
                if let Some(bytes) = self.cache.take_line(line) {
                    self.mem.write(line * CACHE_LINE, &bytes);
                }
            }
        }
        Access::free(now)
    }

    /// Invalidate (without writeback) every cached line of the range —
    /// the reader-side step after observing an `invalid` flag (§3.3: the
    /// lines are clean because writers hold the page lock exclusively).
    fn invalidate(&mut self, off: u64, len: usize, now: SimTime) -> Access {
        if faults::crashed() {
            return Access::free(now);
        }
        let mut issued = 0u64;
        for line in line_range(off, len) {
            issued += 1;
            self.cache.invalidate(line);
        }
        let end = now + issued * CLFLUSH_ISSUE_NS;
        note_cxl(SpanKind::Clflush, self.node, now, end, 0, 0, 0);
        Access {
            end,
            link_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Shared tail of the CXL 3.0 coherent store: device write, writer
    /// cache refresh, and latency including `snooped` back-invalidation
    /// snoops. The caller decides how sharers are counted and invalidated
    /// — directly in serial mode, deferred to the barrier in shard mode.
    fn write_coherent_tail(&mut self, off: u64, data: &[u8], snooped: u64, now: SimTime) -> Access {
        // Write through to the device.
        self.mem.write(off, data);
        let lr = line_range(off, data.len());
        if self.cache.captures() {
            // Writer keeps a clean, up-to-date copy.
            for line in lr.clone() {
                let line_start = line * CACHE_LINE;
                self.cache.access(line, false);
                let mut fill = [0u8; CACHE_LINE as usize];
                self.mem.read(line_start, &mut fill);
                self.cache.put_line(line, &fill);
            }
        } else {
            self.cache.access_run(lr.clone(), false);
        }
        let lines = lr.count() as u64;
        let link_bytes = lines * CACHE_LINE;
        // Back-invalidation snoops traverse the switch once per sharer.
        let latency = self.base_write_ns()
            + (lines - 1) * CXL_STREAM_WRITE_NS_PER_LINE
            + snooped * CXL_HW_SNOOP_NS;
        let (end, switch_ns) = self.charge_link(now, link_bytes, latency);
        note_cxl(
            SpanKind::CxlWrite,
            self.node,
            now,
            end,
            link_bytes,
            0,
            switch_ns,
        );
        Access {
            end,
            link_bytes,
            hits: 0,
            misses: lines,
        }
    }
}

/// The node-facing CXL access surface, implemented identically by the
/// serial [`CxlPool`] and the phase-private [`CxlShard`]. Database
/// layers are generic over this, so the same protocol code runs in both
/// execution modes.
pub trait CxlFabric {
    /// Cached read (see [`CxlPool::read`]).
    fn read(&mut self, node: NodeId, off: u64, buf: &mut [u8], now: SimTime) -> Access;
    /// Cached write (see [`CxlPool::write`]).
    fn write(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access;
    /// Uncached read (see [`CxlPool::read_uncached`]).
    fn read_uncached(&mut self, node: NodeId, off: u64, buf: &mut [u8], now: SimTime) -> Access;
    /// Uncached store (see [`CxlPool::write_uncached`]).
    fn write_uncached(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access;
    /// Flush a byte range (see [`CxlPool::clflush`]).
    fn clflush(&mut self, node: NodeId, off: u64, len: usize, now: SimTime) -> Access;
    /// Invalidate a byte range (see [`CxlPool::invalidate`]).
    fn invalidate(&mut self, node: NodeId, off: u64, len: usize, now: SimTime) -> Access;
    /// Hardware-coherent store (see [`CxlPool::write_coherent`]).
    fn write_coherent(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access;
}

/// The shared CXL memory pool with its fabric and per-node caches.
#[derive(Debug)]
pub struct CxlPool {
    region: Region,
    switch: Link,
    host_links: Vec<Link>,
    caches: Vec<Cache>,
    node_host: Vec<usize>,
    node_remote: Vec<bool>,
    node_direct: Vec<bool>,
}

impl CxlPool {
    /// Create a pool of `size` bytes (rounded up to a cache line) with the
    /// given node attachments. Accepts any iterable of configs (slices,
    /// owned vectors, or generated iterators), so repeated-node setups
    /// need no temporary `Vec`.
    pub fn new<I>(size: usize, nodes: I) -> Self
    where
        I: IntoIterator,
        I::Item: Borrow<CxlNodeConfig>,
    {
        let size = size.next_multiple_of(CACHE_LINE as usize);
        let mut caches = Vec::new();
        let mut node_host = Vec::new();
        let mut node_remote = Vec::new();
        let mut node_direct = Vec::new();
        let mut hosts = 0usize;
        for n in nodes {
            let n = n.borrow();
            hosts = hosts.max(n.host + 1);
            caches.push(if n.capture {
                Cache::with_capture(n.cache_bytes)
            } else {
                Cache::new(n.cache_bytes)
            });
            node_host.push(n.host);
            node_remote.push(n.remote_numa);
            node_direct.push(n.direct_attach);
        }
        assert!(!caches.is_empty(), "a pool needs at least one node");
        CxlPool {
            region: Region::persistent(size),
            switch: Link::new("cxl-switch", CXL_SWITCH_GBPS),
            host_links: (0..hosts)
                .map(|_| Link::new("cxl-host-link", CXL_HOST_LINK_GBPS))
                .collect(),
            caches,
            node_host,
            node_remote,
            node_direct,
        }
    }

    /// Convenience: single-host pool with `n` identical local nodes.
    pub fn single_host(size: usize, n: usize, cache_bytes: usize, capture: bool) -> Self {
        let cfg = CxlNodeConfig {
            cache_bytes,
            capture,
            ..CxlNodeConfig::default()
        };
        Self::new(size, (0..n).map(move |_| cfg))
    }

    /// Pool size in bytes.
    pub fn len(&self) -> usize {
        self.region.len()
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> usize {
        self.caches.len()
    }

    /// Raw region access for tests/assertions (no timing charged).
    pub fn raw(&self) -> &Region {
        &self.region
    }

    /// Raw mutable region access (bulk initialization; no timing).
    pub fn raw_mut(&mut self) -> &mut Region {
        &mut self.region
    }

    /// This node's cache statistics.
    pub fn cache_stats(&self, node: NodeId) -> crate::cache::CacheStats {
        self.caches[node.0].stats()
    }

    /// Bytes moved over a host's link so far.
    pub fn host_link_bytes(&self, host: usize) -> u64 {
        self.host_links[host].bytes()
    }

    /// Total bytes through the switch.
    pub fn switch_bytes(&self) -> u64 {
        self.switch.bytes()
    }

    /// Reset link byte counters and backlog clocks (between an untimed
    /// setup phase and a measurement window).
    pub fn reset_link_counters(&mut self) {
        self.switch.reset_counters();
        self.switch.reset_queue();
        for l in &mut self.host_links {
            l.reset_counters();
            l.reset_queue();
        }
    }

    /// Borrow a node's full fabric view (serial mode: the real region).
    fn port(&mut self, node: NodeId) -> Port<'_> {
        let host = self.node_host[node.0];
        Port {
            node,
            host,
            remote: self.node_remote[node.0],
            direct: self.node_direct[node.0],
            cache: &mut self.caches[node.0],
            host_link: &mut self.host_links[host],
            switch: &mut self.switch,
            mem: Mem::Direct(&mut self.region),
        }
    }

    /// Cached read of `buf.len()` bytes at `off` by `node`.
    pub fn read(&mut self, node: NodeId, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port(node).read(off, buf, now)
    }

    /// Cached write of `data` at `off` by `node` (write-allocate,
    /// write-back: dirty lines stay in the node's cache).
    pub fn write(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access {
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port(node).write(off, data, now)
    }

    /// Uncached read (metadata flags): always goes to the device,
    /// observing other nodes' non-temporal stores immediately.
    pub fn read_uncached(
        &mut self,
        node: NodeId,
        off: u64,
        buf: &mut [u8],
        now: SimTime,
    ) -> Access {
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port(node).read_uncached(off, buf, now)
    }

    /// Uncached (non-temporal) store: bytes land in the device directly
    /// and become visible to every node; local cache copies are dropped.
    pub fn write_uncached(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access {
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port(node).write_uncached(off, data, now)
    }

    /// `clflush` the byte range: write back dirty lines and invalidate all
    /// cached lines (the §3.3 protocol's publish / self-invalidate step).
    pub fn clflush(&mut self, node: NodeId, off: u64, len: usize, now: SimTime) -> Access {
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port(node).clflush(off, len, now)
    }

    /// Invalidate (without writeback) every cached line of the range —
    /// the reader-side step after observing an `invalid` flag (§3.3: the
    /// lines are clean because writers hold the page lock exclusively).
    pub fn invalidate(&mut self, node: NodeId, off: u64, len: usize, now: SimTime) -> Access {
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port(node).invalidate(off, len, now)
    }

    /// Crash the node's host: its CPU cache (including dirty lines) is
    /// lost. The pool region itself survives — the memory box has an
    /// independent power supply (§3.2).
    pub fn crash_node(&mut self, node: NodeId) {
        self.caches[node.0].crash();
    }

    /// Hardware-coherent store (CXL 3.0 semantics, §2.1/§2.2(4)): the
    /// write lands in the device *and* every other node's cached copy of
    /// the touched lines is back-invalidated by the fabric — no software
    /// `clflush`, no invalidation flags. The store pays the normal write
    /// path plus a per-sharer snoop latency; the writer's own cache keeps
    /// a clean copy.
    pub fn write_coherent(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access {
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        if faults::crashed() {
            return Access::free(now);
        }
        // Back-invalidate sharers first, then let the shared tail write
        // the device and refresh the writer's copy: snoops touch only
        // other nodes' caches and the writer's accesses touch only its
        // own, so this order is equivalent to interleaving them per line.
        let mut snooped = 0u64;
        for line in line_range(off, data.len()) {
            for (j, cache) in self.caches.iter_mut().enumerate() {
                if j == node.0 {
                    continue;
                }
                if cache.contains(line) {
                    cache.invalidate(line);
                    snooped += 1;
                }
            }
        }
        self.port(node).write_coherent_tail(off, data, snooped, now)
    }

    /// Detach `node` into a phase-private [`CxlShard`]: the node's cache
    /// moves out of the pool, its links become [`LinkFork`] proxies, and
    /// memory accesses run against a reader + write-log pair. The pool
    /// keeps an empty placeholder cache for the node until
    /// [`CxlPool::attach_node`] returns the shard.
    pub fn detach_node(&mut self, node: NodeId) -> CxlShard {
        let host = self.node_host[node.0];
        let cache = std::mem::replace(&mut self.caches[node.0], Cache::new(0));
        CxlShard {
            node,
            host,
            remote: self.node_remote[node.0],
            direct: self.node_direct[node.0],
            total_nodes: self.caches.len(),
            cache,
            host_link: self.host_links[host].fork(),
            switch: self.switch.fork(),
            reader: RegionReader::new(&self.region),
            log: WriteLog::new(),
            coherent_invals: Vec::new(),
        }
    }

    /// Re-attach a detached node (e.g. after its simulated host dies, so
    /// barrier-boundary serial code can touch its frozen cache): merges
    /// the shard's link deltas, applies its write log and deferred
    /// coherent invalidations, and moves the cache back in.
    pub fn attach_node(&mut self, mut shard: CxlShard) {
        self.host_links[shard.host].merge(&shard.host_link);
        self.switch.merge(&shard.switch);
        shard.log.apply(&mut self.region);
        for &line in &shard.coherent_invals {
            for (j, c) in self.caches.iter_mut().enumerate() {
                if j != shard.node.0 {
                    c.invalidate(line);
                }
            }
        }
        self.caches[shard.node.0] = shard.cache;
    }

    /// Barrier: fold every shard's quantum deltas back into the shared
    /// state **in the order given** (drivers pass fixed node order), then
    /// refresh each shard's private views for the next quantum.
    ///
    /// Order of effects: link-backlog deltas and write logs merge per
    /// shard in sequence; then deferred CXL 3.0 back-invalidations land
    /// in all other shards' (and still-attached nodes') caches; finally
    /// readers and link forks are re-derived from the merged state.
    pub fn barrier(&mut self, shards: &mut [CxlShard]) {
        for s in shards.iter_mut() {
            self.host_links[s.host].merge(&s.host_link);
            self.switch.merge(&s.switch);
            s.log.apply(&mut self.region);
        }
        for i in 0..shards.len() {
            if shards[i].coherent_invals.is_empty() {
                continue;
            }
            let (before, rest) = shards.split_at_mut(i);
            let (me, after) = rest.split_first_mut().expect("index in range");
            let writer = me.node;
            for &line in &me.coherent_invals {
                for s in before.iter_mut().chain(after.iter_mut()) {
                    s.cache.invalidate(line);
                }
                for (j, c) in self.caches.iter_mut().enumerate() {
                    if j != writer.0 {
                        c.invalidate(line);
                    }
                }
            }
            me.coherent_invals.clear();
        }
        for s in shards.iter_mut() {
            s.host_link = self.host_links[s.host].fork();
            s.switch = self.switch.fork();
            s.reader = RegionReader::new(&self.region);
        }
    }
}

impl CxlFabric for CxlPool {
    fn read(&mut self, node: NodeId, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        CxlPool::read(self, node, off, buf, now)
    }
    fn write(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access {
        CxlPool::write(self, node, off, data, now)
    }
    fn read_uncached(&mut self, node: NodeId, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        CxlPool::read_uncached(self, node, off, buf, now)
    }
    fn write_uncached(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access {
        CxlPool::write_uncached(self, node, off, data, now)
    }
    fn clflush(&mut self, node: NodeId, off: u64, len: usize, now: SimTime) -> Access {
        CxlPool::clflush(self, node, off, len, now)
    }
    fn invalidate(&mut self, node: NodeId, off: u64, len: usize, now: SimTime) -> Access {
        CxlPool::invalidate(self, node, off, len, now)
    }
    fn write_coherent(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access {
        CxlPool::write_coherent(self, node, off, data, now)
    }
}

/// One node's detached, phase-private attachment to the pool: owns the
/// node's cache, forked link proxies, and a reader + write-log view of
/// the region. Safe to move to a worker thread for one quantum; the
/// driver calls [`CxlPool::barrier`] to merge and refresh.
#[derive(Debug)]
pub struct CxlShard {
    node: NodeId,
    host: usize,
    remote: bool,
    direct: bool,
    total_nodes: usize,
    cache: Cache,
    host_link: LinkFork,
    switch: LinkFork,
    reader: RegionReader,
    log: WriteLog,
    /// Lines back-invalidated by CXL 3.0 coherent stores this quantum,
    /// applied to peer caches at the barrier.
    coherent_invals: Vec<u64>,
}

impl CxlShard {
    /// The node this shard detached.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This node's cache statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Crash this node's host mid-phase: the cache (dirty lines
    /// included) is lost, mirroring [`CxlPool::crash_node`].
    pub fn crash_node(&mut self) {
        self.cache.crash();
    }

    fn port(&mut self) -> Port<'_> {
        Port {
            node: self.node,
            host: self.host,
            remote: self.remote,
            direct: self.direct,
            cache: &mut self.cache,
            host_link: &mut self.host_link,
            switch: &mut self.switch,
            mem: Mem::Logged(&self.reader, &mut self.log),
        }
    }
}

impl CxlFabric for CxlShard {
    fn read(&mut self, node: NodeId, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        debug_assert_eq!(node, self.node);
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port().read(off, buf, now)
    }
    fn write(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access {
        debug_assert_eq!(node, self.node);
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port().write(off, data, now)
    }
    fn read_uncached(&mut self, node: NodeId, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        debug_assert_eq!(node, self.node);
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port().read_uncached(off, buf, now)
    }
    fn write_uncached(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access {
        debug_assert_eq!(node, self.node);
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port().write_uncached(off, data, now)
    }
    fn clflush(&mut self, node: NodeId, off: u64, len: usize, now: SimTime) -> Access {
        debug_assert_eq!(node, self.node);
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port().clflush(off, len, now)
    }
    fn invalidate(&mut self, node: NodeId, off: u64, len: usize, now: SimTime) -> Access {
        debug_assert_eq!(node, self.node);
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        self.port().invalidate(off, len, now)
    }
    fn write_coherent(&mut self, node: NodeId, off: u64, data: &[u8], now: SimTime) -> Access {
        debug_assert_eq!(node, self.node);
        let _prof = simkit::profile::scope(simkit::profile::Subsys::CxlMem);
        if faults::crashed() {
            return Access::free(now);
        }
        let lr = line_range(off, data.len());
        // Deterministic shard-mode snoop model: every peer is charged a
        // snoop per line (no peeking at peer caches mid-phase); the
        // actual back-invalidations land at the barrier.
        let snooped = (lr.end - lr.start) * (self.total_nodes as u64).saturating_sub(1);
        self.coherent_invals.extend(lr);
        self.port().write_coherent_tail(off, data, snooped, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::PAGE_SIZE;

    fn pool(capture: bool) -> CxlPool {
        CxlPool::single_host(1 << 20, 2, 64 << 10, capture)
    }

    #[test]
    fn write_then_read_roundtrip_same_node() {
        for capture in [false, true] {
            let mut p = pool(capture);
            let a = p.write(NodeId(0), 128, b"polarcxlmem", SimTime::ZERO);
            let mut buf = [0u8; 11];
            let b = p.read(NodeId(0), 128, &mut buf, a.end);
            assert_eq!(&buf, b"polarcxlmem");
            assert!(b.end > a.end);
        }
    }

    #[test]
    fn second_read_hits_cache_and_skips_link() {
        let mut p = pool(false);
        let mut buf = [0u8; 64];
        let first = p.read(NodeId(0), 0, &mut buf, SimTime::ZERO);
        assert_eq!(first.misses, 1);
        assert_eq!(first.link_bytes, 64);
        let second = p.read(NodeId(0), 0, &mut buf, first.end);
        assert_eq!(second.hits, 1);
        assert_eq!(second.link_bytes, 0);
        assert!(second.end - first.end < first.end - SimTime::ZERO);
    }

    #[test]
    fn page_read_latency_matches_table2() {
        let mut p = pool(false);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        let a = p.read(NodeId(0), 0, &mut buf, SimTime::ZERO);
        assert_eq!(a.misses, 256);
        let ns = a.end.as_nanos();
        // Paper Table 2: 16 KB CXL read ≈ 2.46 µs.
        assert!((2_000..3_000).contains(&ns), "{ns}");
    }

    #[test]
    fn capture_mode_holds_dirty_data_out_of_region() {
        let mut p = pool(true);
        p.write(NodeId(0), 0, &[0xAB; 64], SimTime::ZERO);
        // The store is still in node 0's cache: the region has old bytes.
        assert_eq!(p.raw().slice(0, 1), &[0]);
        // ...and node 1, reading the device, sees stale data (no CXL 2.0
        // hardware coherency!).
        let mut buf = [0u8; 64];
        p.read(NodeId(1), 0, &mut buf, SimTime::ZERO);
        assert_eq!(buf[0], 0, "node 1 must see pre-store bytes");
        // After clflush the store is visible.
        p.clflush(NodeId(0), 0, 64, SimTime::ZERO);
        assert_eq!(p.raw().slice(0, 1), &[0xAB]);
    }

    #[test]
    fn stale_cache_without_invalidation_is_observable() {
        // The failure mode the §3.3 protocol exists to prevent.
        let mut p = pool(true);
        let mut buf = [0u8; 64];
        p.read(NodeId(1), 0, &mut buf, SimTime::ZERO); // node 1 caches zeros
        p.write_uncached(NodeId(0), 0, &[0x77; 64], SimTime::ZERO);
        p.read(NodeId(1), 0, &mut buf, SimTime::ZERO);
        assert_eq!(buf[0], 0, "without invalidation node 1 reads stale data");
        p.invalidate(NodeId(1), 0, 64, SimTime::ZERO);
        p.read(NodeId(1), 0, &mut buf, SimTime::ZERO);
        assert_eq!(buf[0], 0x77, "after invalidation the new data is visible");
    }

    #[test]
    fn uncached_ops_bypass_cache_both_ways() {
        let mut p = pool(true);
        let mut buf = [0u8; 8];
        p.read(NodeId(0), 0, &mut [0u8; 64], SimTime::ZERO); // cache the line
        p.write_uncached(NodeId(1), 0, &[9; 8], SimTime::ZERO);
        p.read_uncached(NodeId(0), 0, &mut buf, SimTime::ZERO);
        assert_eq!(buf, [9; 8]);
        // And the cached path was invalidated by our own uncached read.
        let mut b2 = [0u8; 8];
        p.read(NodeId(0), 0, &mut b2, SimTime::ZERO);
        assert_eq!(b2, [9; 8]);
    }

    #[test]
    fn crash_loses_dirty_lines_but_region_survives() {
        let mut p = pool(true);
        p.write_uncached(NodeId(0), 0, &[1; 64], SimTime::ZERO); // durable
        p.write(NodeId(0), 64, &[2; 64], SimTime::ZERO); // dirty in cache
        p.crash_node(NodeId(0));
        assert_eq!(p.raw().slice(0, 1), &[1], "flushed data survives");
        assert_eq!(p.raw().slice(64, 1), &[0], "unflushed dirty line is lost");
    }

    #[test]
    fn direct_attach_is_faster_than_switched() {
        let mk = |direct: bool| {
            CxlPool::new(
                1 << 16,
                [CxlNodeConfig {
                    cache_bytes: 64,
                    direct_attach: direct,
                    ..CxlNodeConfig::default()
                }],
            )
        };
        let mut sw = mk(false);
        let mut di = mk(true);
        let mut b = [0u8; 64];
        let s = sw.read(NodeId(0), 0, &mut b, SimTime::ZERO).end.as_nanos();
        let d = di.read(NodeId(0), 0, &mut b, SimTime::ZERO).end.as_nanos();
        // Table 1: switch adds 549-265 = 284 ns per load.
        assert_eq!(s - d, 284, "switch premium: {s} vs {d}");
    }

    #[test]
    fn remote_numa_pays_extra_latency() {
        let cfgs = vec![
            CxlNodeConfig::default(),
            CxlNodeConfig {
                remote_numa: true,
                ..CxlNodeConfig::default()
            },
        ];
        let mut p = CxlPool::new(1 << 16, &cfgs);
        let mut b = [0u8; 64];
        let local = p.read(NodeId(0), 0, &mut b, SimTime::ZERO);
        let remote = p.read(NodeId(1), 64, &mut b, SimTime::ZERO);
        assert!(remote.end - SimTime::ZERO > local.end - SimTime::ZERO);
    }

    #[test]
    fn link_accounts_miss_traffic_only() {
        let mut p = pool(false);
        let mut buf = vec![0u8; 1024];
        p.read(NodeId(0), 0, &mut buf, SimTime::ZERO);
        p.read(NodeId(0), 0, &mut buf, SimTime::ZERO);
        assert_eq!(p.host_link_bytes(0), 1024);
        assert_eq!(p.switch_bytes(), 1024);
    }

    #[test]
    fn hardware_coherent_store_back_invalidates_sharers() {
        let mut p = pool(true);
        let mut buf = [0u8; 8];
        // Node 1 caches the line.
        p.read(NodeId(1), 0, &mut buf, SimTime::ZERO);
        assert_eq!(buf, [0; 8]);
        // Node 0 issues a CXL 3.0 coherent store: no clflush anywhere.
        p.write_coherent(NodeId(0), 0, &[0x3A; 8], SimTime::ZERO);
        // Node 1's next read misses (invalidated) and sees fresh data.
        p.read(NodeId(1), 0, &mut buf, SimTime::ZERO);
        assert_eq!(buf, [0x3A; 8], "hardware coherency delivers the store");
        // The writer's own copy is clean and current.
        let mut b0 = [0u8; 8];
        p.read(NodeId(0), 0, &mut b0, SimTime::ZERO);
        assert_eq!(b0, [0x3A; 8]);
    }

    #[test]
    fn coherent_store_charges_per_sharer_snoop() {
        let mut p = pool(false);
        let mut buf = [0u8; 64];
        let base = p.write_coherent(NodeId(0), 0, &[1; 64], SimTime::ZERO).end;
        // Make node 1 a sharer, then store again: must cost more.
        p.read(NodeId(1), 64, &mut buf, SimTime::ZERO);
        let with_sharer = {
            let a = p.write_coherent(NodeId(0), 64, &[1; 64], SimTime::ZERO);
            a.end
        };
        assert!(
            with_sharer.as_nanos() > base.as_nanos(),
            "snoop adds latency"
        );
    }

    // ---- batched fast path vs per-line reference ----------------------
    //
    // The capture-mode pool still runs the original per-line loop, and
    // capture only changes where line *data* lives — never the hit/miss
    // accounting or the latency/link formulas. Driving the same access
    // sequence through a timing pool (batched path) and a capture pool
    // (per-line path) therefore pins the batched `read`/`write`/
    // `write_coherent` to the per-line reference bit for bit: Access,
    // CacheStats, link counters, and returned data must all agree.

    fn assert_batched_matches_reference(ops: &[(u8, u64, usize)]) {
        let cache_bytes = 4 << 10; // 64 slots: small enough to thrash
        let mut fast = CxlPool::single_host(1 << 20, 2, cache_bytes, false);
        let mut refp = CxlPool::single_host(1 << 20, 2, cache_bytes, true);
        let mut t_fast = SimTime::ZERO;
        let mut t_ref = SimTime::ZERO;
        for &(kind, off, len) in ops {
            let (a, b) = match kind {
                0 => {
                    let mut b1 = vec![0u8; len];
                    let mut b2 = vec![0u8; len];
                    let a = fast.read(NodeId(0), off, &mut b1, t_fast);
                    let b = refp.read(NodeId(0), off, &mut b2, t_ref);
                    assert_eq!(b1, b2, "read data diverged at off={off} len={len}");
                    (a, b)
                }
                1 => {
                    let data: Vec<u8> = (0..len).map(|i| (off as usize + i) as u8).collect();
                    (
                        fast.write(NodeId(0), off, &data, t_fast),
                        refp.write(NodeId(0), off, &data, t_ref),
                    )
                }
                _ => {
                    let data: Vec<u8> = (0..len).map(|i| (off as usize + i) as u8).collect();
                    (
                        fast.write_coherent(NodeId(0), off, &data, t_fast),
                        refp.write_coherent(NodeId(0), off, &data, t_ref),
                    )
                }
            };
            assert_eq!(a, b, "Access diverged at kind={kind} off={off} len={len}");
            t_fast = a.end;
            t_ref = b.end;
        }
        assert_eq!(fast.cache_stats(NodeId(0)), refp.cache_stats(NodeId(0)));
        assert_eq!(fast.host_link_bytes(0), refp.host_link_bytes(0));
        assert_eq!(fast.switch_bytes(), refp.switch_bytes());
    }

    #[test]
    fn batched_matches_reference_aligned() {
        assert_batched_matches_reference(&[
            (0, 0, 16 << 10), // cold page read
            (0, 0, 16 << 10), // warm re-read (partially evicted by itself)
            (1, 0, 4 << 10),  // full-line writes, no allocate fetch
            (0, 2 << 10, 4 << 10),
            (1, 0, 64),
            (0, 0, 64),
        ]);
    }

    #[test]
    fn batched_matches_reference_unaligned() {
        assert_batched_matches_reference(&[
            (1, 7, 50),     // sub-line store: allocate fetch
            (1, 60, 8),     // straddles two lines, both partial
            (1, 64, 64),    // exactly one full line
            (1, 100, 1000), // partial head + full middles + partial tail
            (0, 3, 801),
            (1, 100, 1000), // same range again: all hits now
            (0, 99, 1002),
        ]);
    }

    #[test]
    fn batched_matches_reference_thrashing() {
        // 64-slot cache, 128-line ranges: every run aliases with itself,
        // so later lines of one request evict earlier lines of the same
        // request (dirty evictions inside a single write).
        assert_batched_matches_reference(&[
            (1, 0, 8 << 10),
            (0, 0, 8 << 10),
            (1, 31, 8 << 10),
            (0, 4096, 8 << 10),
            (2, 0, 4 << 10),
            (0, 0, 8 << 10),
        ]);
    }

    #[test]
    fn batched_matches_reference_coherent_with_sharers() {
        let cache_bytes = 4 << 10;
        let mut fast = CxlPool::single_host(1 << 20, 3, cache_bytes, false);
        let mut refp = CxlPool::single_host(1 << 20, 3, cache_bytes, true);
        for p in [&mut fast, &mut refp] {
            let mut buf = vec![0u8; 4096];
            p.read(NodeId(1), 0, &mut buf, SimTime::ZERO);
            p.read(NodeId(2), 2048, &mut buf[..2048], SimTime::ZERO);
        }
        let data = vec![0x42u8; 4096];
        let a = fast.write_coherent(NodeId(0), 0, &data, SimTime::ZERO);
        let b = refp.write_coherent(NodeId(0), 0, &data, SimTime::ZERO);
        assert_eq!(a, b, "snoop accounting must match per-line reference");
        for n in 0..3 {
            assert_eq!(fast.cache_stats(NodeId(n)), refp.cache_stats(NodeId(n)));
        }
    }

    #[test]
    fn batched_matches_reference_edge_ranges() {
        // Edge geometry for the batched run path, pinned against the
        // per-line capture reference in both modes: zero-length accesses
        // (aligned offsets produce an empty line range, unaligned ones a
        // single line), a run exactly filling the 64-slot cache, and
        // runs ending exactly at the 1 MiB region end.
        let region_end = 1u64 << 20;
        assert_batched_matches_reference(&[
            (0, 0, 0),                            // empty, aligned: no lines
            (1, 64, 0),                           // empty aligned write
            (0, 100, 0),                          // empty, unaligned: one line
            (1, 100, 0),                          // ditto on the write path
            (1, 0, 4 << 10),                      // exactly fills all 64 sets
            (0, 0, 4 << 10),                      // full re-read, all hits
            (0, region_end - (4 << 10), 4 << 10), // run ends at region end
            (1, region_end - 100, 100),           // unaligned tail to the end
            (0, region_end - 1, 1),               // last byte alone
            (1, region_end, 0),                   // empty at the very end
        ]);
    }

    #[test]
    fn batched_matches_reference_randomized() {
        use simkit::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(0xBA7C_4ED0);
        for _ in 0..8 {
            // Cached reads and writes only: coherent stores over lines the
            // writer holds dirty legitimately return different *data* in
            // capture vs timing mode (back-invalidation drops unflushed
            // bytes that timing mode had already written through), so the
            // write_coherent equivalence is pinned by the deterministic
            // tests above instead.
            let ops: Vec<(u8, u64, usize)> = (0..40)
                .map(|_| {
                    let kind = rng.gen_range(0..2u32) as u8;
                    let off = rng.gen_range(0..(1u64 << 19));
                    let len = rng.gen_range(1..20_000usize).min((1 << 20) - off as usize);
                    (kind, off, len)
                })
                .collect();
            assert_batched_matches_reference(&ops);
        }
    }

    #[test]
    fn poisoned_read_raises_pending_flag_only() {
        use simkit::faults::{self, Action, FaultPlan, Trigger};
        faults::clear();
        let mut p = pool(false);
        p.write(NodeId(0), 0, &[5; 64], SimTime::ZERO);
        faults::install(
            FaultPlan::default().with(Trigger::SiteHit(FaultSite::CxlRead, 0), Action::PoisonLine),
        );
        let mut buf = [0u8; 64];
        let a = p.read(NodeId(0), 0, &mut buf, SimTime::ZERO);
        // Bytes and timing are those of a normal read...
        assert_eq!(buf, [5; 64]);
        assert!(a.end > SimTime::ZERO);
        // ...but the consumer sees the poison report exactly once.
        assert!(faults::take_poisoned());
        assert!(!faults::take_poisoned());
        assert!(!faults::crashed());
        faults::clear();
    }

    #[test]
    fn partial_clflush_tears_at_a_line_boundary() {
        use simkit::faults::{self, Action, FaultPlan, Trigger};
        faults::clear();
        let mut p = pool(true);
        // Dirty three lines in the capture cache.
        p.write(NodeId(0), 0, &[0xAA; 192], SimTime::ZERO);
        assert_eq!(p.raw().slice(0, 1), &[0]);
        faults::install(FaultPlan::default().with(
            Trigger::SiteHit(FaultSite::Clflush, 0),
            Action::PartialClflush { keep_lines: 1 },
        ));
        p.clflush(NodeId(0), 0, 192, SimTime::ZERO);
        assert!(faults::crashed());
        faults::clear();
        p.crash_node(NodeId(0)); // unflushed dirty lines die with the host
        assert_eq!(p.raw().slice(0, 1), &[0xAA], "first line made it");
        assert_eq!(p.raw().slice(64, 1), &[0], "second line was torn off");
        assert_eq!(p.raw().slice(128, 1), &[0], "third line was torn off");
    }

    #[test]
    fn dead_host_sees_frozen_view_without_mutation() {
        use simkit::faults::{self, FaultPlan};
        faults::clear();
        let mut p = pool(true);
        p.write(NodeId(0), 0, &[7; 64], SimTime::ZERO); // dirty in cache
        faults::install(FaultPlan::crash_at_hit(0));
        // First poll (this read) crashes the host; the frozen view still
        // includes its own cached dirty line.
        let mut buf = [0u8; 64];
        let a = p.read(NodeId(0), 0, &mut buf, SimTime(4));
        assert_eq!(a.end, SimTime(4));
        assert_eq!(buf, [7; 64]);
        // Dead stores and flushes are inert.
        p.write(NodeId(0), 0, &[9; 64], SimTime(4));
        p.write_uncached(NodeId(0), 0, &[9; 64], SimTime(4));
        p.clflush(NodeId(0), 0, 64, SimTime(4));
        assert_eq!(p.raw().slice(0, 1), &[0], "device never saw any store");
        faults::clear();
    }

    #[test]
    fn clflush_clean_range_moves_no_bytes() {
        let mut p = pool(false);
        let mut buf = [0u8; 256];
        p.read(NodeId(0), 0, &mut buf, SimTime::ZERO);
        let before = p.host_link_bytes(0);
        let a = p.clflush(NodeId(0), 0, 256, SimTime::ZERO);
        assert_eq!(a.link_bytes, 0);
        assert_eq!(p.host_link_bytes(0), before);
    }

    // ---- shard mode ---------------------------------------------------

    #[test]
    fn shard_writes_commit_at_the_barrier_in_node_order() {
        let mut p = CxlPool::single_host(1 << 16, 2, 4 << 10, false);
        let mut shards = vec![p.detach_node(NodeId(0)), p.detach_node(NodeId(1))];
        // Both nodes store to the same word in one quantum.
        shards[0].write_uncached(NodeId(0), 0, &[1; 8], SimTime::ZERO);
        shards[1].write_uncached(NodeId(1), 0, &[2; 8], SimTime::ZERO);
        // Mid-phase: the region is untouched, but each node reads its own
        // store back (read-your-own-writes) and not its peer's.
        assert_eq!(p.raw().slice(0, 1), &[0]);
        let mut b = [0u8; 8];
        shards[0].read_uncached(NodeId(0), 0, &mut b, SimTime::ZERO);
        assert_eq!(b, [1; 8]);
        shards[1].read_uncached(NodeId(1), 0, &mut b, SimTime::ZERO);
        assert_eq!(b, [2; 8]);
        p.barrier(&mut shards);
        // Fixed node order: node 1's store lands last.
        assert_eq!(p.raw().slice(0, 8), &[2; 8]);
        // Next quantum both see the merged bytes.
        shards[0].read_uncached(NodeId(0), 0, &mut b, SimTime::ZERO);
        assert_eq!(b, [2; 8]);
    }

    #[test]
    fn shard_link_backlog_merges_to_the_serial_total() {
        // The same byte volume through pool ops and through shard ops
        // must leave identical link byte counters after the barrier.
        let mut serial = CxlPool::single_host(1 << 16, 2, 64, false);
        let mut buf = vec![0u8; 2048];
        serial.read(NodeId(0), 0, &mut buf, SimTime::ZERO);
        serial.read(NodeId(1), 2048, &mut buf, SimTime::ZERO);

        let mut phased = CxlPool::single_host(1 << 16, 2, 64, false);
        let mut shards = vec![phased.detach_node(NodeId(0)), phased.detach_node(NodeId(1))];
        shards[0].read(NodeId(0), 0, &mut buf, SimTime::ZERO);
        shards[1].read(NodeId(1), 2048, &mut buf, SimTime::ZERO);
        phased.barrier(&mut shards);

        assert_eq!(serial.host_link_bytes(0), phased.host_link_bytes(0));
        assert_eq!(serial.switch_bytes(), phased.switch_bytes());
    }

    #[test]
    fn shard_coherent_store_invalidates_peers_at_the_barrier() {
        let mut p = CxlPool::single_host(1 << 16, 2, 4 << 10, true);
        // Node 1 caches a line (serial warmup).
        let mut b = [0u8; 64];
        p.read(NodeId(1), 0, &mut b, SimTime::ZERO);
        let mut shards = vec![p.detach_node(NodeId(0)), p.detach_node(NodeId(1))];
        shards[0].write_coherent(NodeId(0), 0, &[0x5C; 64], SimTime::ZERO);
        // Mid-phase node 1 still reads its stale cached copy.
        shards[1].read(NodeId(1), 0, &mut b, SimTime::ZERO);
        assert_eq!(b[0], 0);
        p.barrier(&mut shards);
        // After the barrier the back-invalidation has landed.
        shards[1].read(NodeId(1), 0, &mut b, SimTime::ZERO);
        assert_eq!(b, [0x5C; 64]);
    }

    #[test]
    fn attach_node_returns_the_cache_and_applies_the_log() {
        let mut p = CxlPool::single_host(1 << 16, 2, 4 << 10, true);
        let mut shard = p.detach_node(NodeId(0));
        shard.write(NodeId(0), 0, &[9; 64], SimTime::ZERO);
        shard.write_uncached(NodeId(0), 64, &[8; 8], SimTime::ZERO);
        p.attach_node(shard);
        // The uncached store landed in the region; the cached store is
        // dirty in the re-attached cache, observable via a pool read.
        assert_eq!(p.raw().slice(64, 1), &[8]);
        let mut b = [0u8; 64];
        p.read(NodeId(0), 0, &mut b, SimTime::ZERO);
        assert_eq!(b, [9; 64]);
    }
}
