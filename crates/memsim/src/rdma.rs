//! The RDMA disaggregated-memory baseline fabric (§2.2).
//!
//! [`RdmaPool`] is the remote memory node reachable over per-host RDMA
//! NICs. Unlike CXL there is no load/store path: data must be *moved* —
//! whole buffers are DMA-copied between the remote region and local
//! DRAM, paying the Table 2 latency profile and consuming NIC bandwidth
//! (12 GB/s per direction on a ConnectX-6). The per-op serialization term
//! models doorbell/WQE contention, the reason IOPS-bound RDMA stops
//! scaling (§2.2, limitation 3).

use crate::calib::{RDMA_NIC_GBPS, RDMA_PER_OP_NS, RDMA_READ_BASE_NS, RDMA_WRITE_BASE_NS};
use crate::region::Region;
use crate::shard::{RegionReader, WriteLog};
use crate::Access;
use simkit::faults::{self, FaultSite, Verdict};
use simkit::trace::{self, Lane, SpanKind};
use simkit::{Link, LinkFork, SimTime};

/// Typed failure of an RDMA operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaError {
    /// Transient NIC/fabric error: the attempt failed after burning
    /// `spike_ns` of extra latency; the caller retries (with backoff)
    /// or falls back to storage.
    Transient {
        /// Latency the failed attempt cost, in nanoseconds.
        spike_ns: u64,
    },
}

impl std::fmt::Display for RdmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdmaError::Transient { spike_ns } => {
                write!(f, "transient rdma fault (+{spike_ns} ns)")
            }
        }
    }
}

impl std::error::Error for RdmaError {}

/// Poll a host's NIC link health. An outage surfaces as a typed
/// transient error whose spike is the retry interval — the caller's
/// existing retry/backoff/fallback machinery handles it (and the
/// infallible paths terminate because retries advance `now` past
/// the outage). A degrade returns the latency multiplier.
fn link_gate(host: usize, now: SimTime) -> Result<u64, RdmaError> {
    match faults::link_health(FaultSite::RdmaLink, host as u32, now) {
        faults::LinkHealth::Healthy => Ok(1),
        faults::LinkHealth::Degraded { factor } => Ok(factor as u64),
        faults::LinkHealth::Down { retry_ns, .. } => {
            Err(RdmaError::Transient { spike_ns: retry_ns })
        }
    }
}

/// Stretch a completed transfer by the degrade factor, charging the
/// slowdown to the NIC attribution lane.
fn degrade(a: &mut Access, now: SimTime, factor: u64) {
    if factor > 1 {
        let delta = a.end.saturating_since(now);
        let extra = delta.saturating_mul(factor - 1);
        a.end += extra;
        trace::attr_add(Lane::RdmaNic, extra);
    }
}

/// Charge a bulk transfer to a NIC pipe: the single timed body shared by
/// the pool and the per-node shard, so both paths cost identically.
fn charge_nic(link: &mut Link, kind: SpanKind, host: usize, len: u64, now: SimTime) -> Access {
    let _prof = simkit::profile::scope(simkit::profile::Subsys::Rdma);
    let g = link.transfer(now, len);
    // Attribution leaf: the whole delta (protocol base + per-op +
    // bandwidth queueing) is NIC time.
    trace::attr_add(Lane::RdmaNic, g.end.saturating_since(now));
    trace::span(kind, host as u32, now, g.end, len);
    Access {
        end: g.end,
        link_bytes: len,
        hits: 0,
        misses: 0,
    }
}

/// A small control message on a NIC's tx pipe — costs a round trip but
/// no bulk bandwidth. Shared body of [`RdmaPool::message`] and
/// [`RdmaShard::message`].
fn message_on(tx: &mut Link, host: usize, now: SimTime) -> SimTime {
    if faults::crashed() {
        return now;
    }
    let mut now = now;
    let factor = loop {
        match link_gate(host, now) {
            Ok(f) => break f,
            // Outage: the sender retries the doorbell until the NIC
            // returns; each attempt burns the backoff interval.
            Err(RdmaError::Transient { spike_ns }) => now += spike_ns,
        }
    };
    let end = tx.transfer(now, 64).end;
    trace::attr_add(Lane::RdmaNic, end.saturating_since(now));
    let mut a = Access {
        end,
        link_bytes: 64,
        hits: 0,
        misses: 0,
    };
    // `degrade` charges the slowdown to the NIC lane itself.
    degrade(&mut a, now, factor);
    trace::span(SpanKind::RdmaMsg, host as u32, now, a.end, 64);
    a.end
}

/// The RDMA operations node-level database code issues, abstracted over
/// the serial pool and a phase-private [`RdmaShard`]. Drivers hand nodes
/// whichever implementation matches the execution mode; both charge the
/// identical timed bodies.
pub trait RdmaFabric {
    /// RDMA read over `host`'s NIC (retrying transients in place).
    fn read(&mut self, host: usize, off: u64, buf: &mut [u8], now: SimTime) -> Access;
    /// RDMA write over `host`'s NIC (retrying transients in place).
    fn write(&mut self, host: usize, off: u64, data: &[u8], now: SimTime) -> Access;
    /// Control message on `host`'s NIC.
    fn message(&mut self, host: usize, now: SimTime) -> SimTime;
}

/// Remote memory pool behind per-host RDMA NICs.
#[derive(Debug)]
pub struct RdmaPool {
    region: Region,
    /// Per host: (read-direction link, write-direction link). Full-duplex
    /// NIC modelled as two pipes.
    nics: Vec<(Link, Link)>,
}

impl RdmaPool {
    /// A pool of `size` bytes reachable from `hosts` hosts.
    pub fn new(size: usize, hosts: usize) -> Self {
        assert!(hosts > 0);
        RdmaPool {
            // The remote memory node is a separate machine: it survives
            // *compute host* crashes (like the paper's RDMA baselines).
            region: Region::persistent(size),
            nics: (0..hosts)
                .map(|_| {
                    (
                        Link::new("rdma-rx", RDMA_NIC_GBPS)
                            .with_per_op_overhead(RDMA_PER_OP_NS)
                            .with_propagation(RDMA_READ_BASE_NS),
                        Link::new("rdma-tx", RDMA_NIC_GBPS)
                            .with_per_op_overhead(RDMA_PER_OP_NS)
                            .with_propagation(RDMA_WRITE_BASE_NS),
                    )
                })
                .collect(),
        }
    }

    /// Pool size in bytes.
    pub fn len(&self) -> usize {
        self.region.len()
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// Raw region (tests / bulk load, no timing).
    pub fn raw(&self) -> &Region {
        &self.region
    }

    /// Raw mutable region (no timing).
    pub fn raw_mut(&mut self) -> &mut Region {
        &mut self.region
    }

    /// RDMA read with typed fault propagation: like [`RdmaPool::read`],
    /// but a transient fabric fault surfaces as an error (carrying the
    /// latency the failed attempt burned) instead of being retried
    /// internally.
    pub fn try_read(
        &mut self,
        host: usize,
        off: u64,
        buf: &mut [u8],
        now: SimTime,
    ) -> Result<Access, RdmaError> {
        let factor = link_gate(host, now)?;
        match faults::gate(FaultSite::RdmaRead, now) {
            Verdict::Run => {
                let mut a = self.read_inner(host, off, buf, now);
                degrade(&mut a, now, factor);
                Ok(a)
            }
            Verdict::Transient { spike_ns } => Err(RdmaError::Transient { spike_ns }),
            // Dead: the host still sees the remote node's (surviving)
            // bytes, but nothing is timed or queued any more.
            _ => {
                self.region.read(off, buf);
                Ok(Access::free(now))
            }
        }
    }

    /// RDMA read: copy `buf.len()` bytes from remote `off` into `buf`
    /// over `host`'s NIC. Transient faults are retried in place (the
    /// burst is finite by construction); use [`RdmaPool::try_read`] for
    /// typed propagation.
    pub fn read(&mut self, host: usize, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        let mut now = now;
        loop {
            match self.try_read(host, off, buf, now) {
                Ok(a) => return a,
                Err(RdmaError::Transient { spike_ns }) => now += spike_ns,
            }
        }
    }

    fn read_inner(&mut self, host: usize, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        self.region.read(off, buf);
        charge_nic(
            &mut self.nics[host].0,
            SpanKind::RdmaPageIn,
            host,
            buf.len() as u64,
            now,
        )
    }

    /// RDMA write with typed fault propagation: like
    /// [`RdmaPool::write`], but a transient fabric fault surfaces as an
    /// error instead of being retried internally. A dead host's writes
    /// never reach the remote node.
    pub fn try_write(
        &mut self,
        host: usize,
        off: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<Access, RdmaError> {
        let factor = link_gate(host, now)?;
        match faults::gate(FaultSite::RdmaWrite, now) {
            Verdict::Run => {
                let mut a = self.write_inner(host, off, data, now);
                degrade(&mut a, now, factor);
                Ok(a)
            }
            Verdict::Transient { spike_ns } => Err(RdmaError::Transient { spike_ns }),
            _ => Ok(Access::free(now)),
        }
    }

    /// RDMA write: copy `data` to remote `off` over `host`'s NIC.
    /// Transient faults are retried in place; use
    /// [`RdmaPool::try_write`] for typed propagation.
    pub fn write(&mut self, host: usize, off: u64, data: &[u8], now: SimTime) -> Access {
        let mut now = now;
        loop {
            match self.try_write(host, off, data, now) {
                Ok(a) => return a,
                Err(RdmaError::Transient { spike_ns }) => now += spike_ns,
            }
        }
    }

    fn write_inner(&mut self, host: usize, off: u64, data: &[u8], now: SimTime) -> Access {
        self.region.write(off, data);
        charge_nic(
            &mut self.nics[host].1,
            SpanKind::RdmaPageOut,
            host,
            data.len() as u64,
            now,
        )
    }

    /// A small control message (e.g. a page-invalidation RPC in the
    /// RDMA-based coherency protocol) — costs a round trip but no bulk
    /// bandwidth.
    pub fn message(&mut self, host: usize, now: SimTime) -> SimTime {
        message_on(&mut self.nics[host].1, host, now)
    }

    /// Bytes moved through a host's NIC (both directions).
    pub fn nic_bytes(&self, host: usize) -> u64 {
        self.nics[host].0.bytes() + self.nics[host].1.bytes()
    }

    /// Total bytes through every NIC.
    pub fn total_bytes(&self) -> u64 {
        (0..self.nics.len()).map(|h| self.nic_bytes(h)).sum()
    }

    /// Reset NIC byte counters and backlog clocks (between an untimed
    /// setup phase and a measurement window).
    pub fn reset_link_counters(&mut self) {
        for (rx, tx) in &mut self.nics {
            rx.reset_counters();
            rx.reset_queue();
            tx.reset_counters();
            tx.reset_queue();
        }
    }

    /// Detach a phase-private view for the node on `host`, whose page
    /// fills, writebacks and region traffic use its own NIC pair and
    /// whose invalidation fan-out rides the coherency server's tx NIC on
    /// `server_host`. Shards step concurrently between barriers; the
    /// pool must not be timed against either host until
    /// [`RdmaPool::barrier`] or [`RdmaPool::attach_host`] reconciles.
    pub fn detach_host(&mut self, host: usize, server_host: usize) -> RdmaShard {
        assert_ne!(
            host, server_host,
            "a shard's host must not be the server host"
        );
        RdmaShard {
            host,
            server_host,
            rx: self.nics[host].0.fork(),
            tx: self.nics[host].1.fork(),
            server_tx: self.nics[server_host].1.fork(),
            reader: RegionReader::new(&self.region),
            log: WriteLog::new(),
        }
    }

    /// Virtual-time barrier: commit every shard's quantum in the given
    /// (fixed) order — merge NIC forks, apply write logs — then refresh
    /// each shard's forks and region reader for the next quantum.
    pub fn barrier(&mut self, shards: &mut [RdmaShard]) {
        for s in shards.iter_mut() {
            self.nics[s.host].0.merge(&s.rx);
            self.nics[s.host].1.merge(&s.tx);
            self.nics[s.server_host].1.merge(&s.server_tx);
            s.log.apply(&mut self.region);
        }
        for s in shards.iter_mut() {
            s.rx = self.nics[s.host].0.fork();
            s.tx = self.nics[s.host].1.fork();
            s.server_tx = self.nics[s.server_host].1.fork();
            s.reader = RegionReader::new(&self.region);
        }
    }

    /// Permanently reabsorb a shard (end of the parallel section or a
    /// node leaving the cluster): merge its forks and apply its log.
    pub fn attach_host(&mut self, mut shard: RdmaShard) {
        self.nics[shard.host].0.merge(&shard.rx);
        self.nics[shard.host].1.merge(&shard.tx);
        self.nics[shard.server_host].1.merge(&shard.server_tx);
        shard.log.apply(&mut self.region);
    }
}

impl RdmaFabric for RdmaPool {
    fn read(&mut self, host: usize, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        RdmaPool::read(self, host, off, buf, now)
    }
    fn write(&mut self, host: usize, off: u64, data: &[u8], now: SimTime) -> Access {
        RdmaPool::write(self, host, off, data, now)
    }
    fn message(&mut self, host: usize, now: SimTime) -> SimTime {
        RdmaPool::message(self, host, now)
    }
}

/// One node's phase-private view of the RDMA pool (see
/// [`RdmaPool::detach_host`]): forked NIC pipes with cumulative-capacity
/// merge semantics, a raw read window over the remote region and a write
/// log committed at the barrier. Timing bodies are shared with the pool,
/// so a 1-worker phased run and an N-worker phased run charge bit-equal
/// costs.
#[derive(Debug)]
pub struct RdmaShard {
    host: usize,
    server_host: usize,
    rx: LinkFork,
    tx: LinkFork,
    server_tx: LinkFork,
    reader: RegionReader,
    log: WriteLog,
}

impl RdmaShard {
    /// The compute host this shard fronts.
    pub fn host(&self) -> usize {
        self.host
    }

    /// RDMA read with typed fault propagation (shard flavour of
    /// [`RdmaPool::try_read`]): reads observe the shard's own pending
    /// stores immediately and peers' stores as of the last barrier.
    pub fn try_read(
        &mut self,
        off: u64,
        buf: &mut [u8],
        now: SimTime,
    ) -> Result<Access, RdmaError> {
        let factor = link_gate(self.host, now)?;
        match faults::gate(FaultSite::RdmaRead, now) {
            Verdict::Run => {
                self.log.read_through(&self.reader, off, buf);
                let mut a = charge_nic(
                    &mut self.rx,
                    SpanKind::RdmaPageIn,
                    self.host,
                    buf.len() as u64,
                    now,
                );
                degrade(&mut a, now, factor);
                Ok(a)
            }
            Verdict::Transient { spike_ns } => Err(RdmaError::Transient { spike_ns }),
            _ => {
                self.log.read_through(&self.reader, off, buf);
                Ok(Access::free(now))
            }
        }
    }

    /// RDMA write with typed fault propagation (shard flavour of
    /// [`RdmaPool::try_write`]): the store lands in the shard's log and
    /// reaches the shared region at the next barrier.
    pub fn try_write(&mut self, off: u64, data: &[u8], now: SimTime) -> Result<Access, RdmaError> {
        let factor = link_gate(self.host, now)?;
        match faults::gate(FaultSite::RdmaWrite, now) {
            Verdict::Run => {
                self.log.write(off, data);
                let mut a = charge_nic(
                    &mut self.tx,
                    SpanKind::RdmaPageOut,
                    self.host,
                    data.len() as u64,
                    now,
                );
                degrade(&mut a, now, factor);
                Ok(a)
            }
            Verdict::Transient { spike_ns } => Err(RdmaError::Transient { spike_ns }),
            _ => Ok(Access::free(now)),
        }
    }
}

impl RdmaFabric for RdmaShard {
    fn read(&mut self, host: usize, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        debug_assert_eq!(host, self.host);
        let mut now = now;
        loop {
            match self.try_read(off, buf, now) {
                Ok(a) => return a,
                Err(RdmaError::Transient { spike_ns }) => now += spike_ns,
            }
        }
    }

    fn write(&mut self, host: usize, off: u64, data: &[u8], now: SimTime) -> Access {
        debug_assert_eq!(host, self.host);
        let mut now = now;
        loop {
            match self.try_write(off, data, now) {
                Ok(a) => return a,
                Err(RdmaError::Transient { spike_ns }) => now += spike_ns,
            }
        }
    }

    /// Control messages always ride the coherency server's tx NIC — the
    /// one deliberately shared pipe, merged with cumulative capacity at
    /// the barrier.
    fn message(&mut self, host: usize, now: SimTime) -> SimTime {
        debug_assert_eq!(host, self.server_host);
        message_on(&mut self.server_tx, host, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::PAGE_SIZE;
    use simkit::dur;

    #[test]
    fn roundtrip() {
        let mut p = RdmaPool::new(1 << 20, 1);
        p.write(0, 4096, b"remote", SimTime::ZERO);
        let mut buf = [0u8; 6];
        p.read(0, 4096, &mut buf, SimTime::ZERO);
        assert_eq!(&buf, b"remote");
    }

    #[test]
    fn transient_faults_surface_typed_and_heal() {
        use simkit::faults::{Action, FaultPlan, Trigger};
        simkit::faults::clear();
        let mut p = RdmaPool::new(1 << 20, 1);
        p.write(0, 0, b"x", SimTime::ZERO);
        simkit::faults::install(FaultPlan::default().with(
            Trigger::SiteHit(FaultSite::RdmaRead, 0),
            Action::RdmaTransient {
                failures: 2,
                spike_ns: 500,
            },
        ));
        let mut buf = [0u8; 1];
        assert_eq!(
            p.try_read(0, 0, &mut buf, SimTime::ZERO),
            Err(RdmaError::Transient { spike_ns: 500 })
        );
        assert_eq!(
            p.try_read(0, 0, &mut buf, SimTime::ZERO),
            Err(RdmaError::Transient { spike_ns: 500 })
        );
        let a = p.try_read(0, 0, &mut buf, SimTime::ZERO).expect("healed");
        assert_eq!(&buf, b"x");
        assert!(a.end > SimTime::ZERO);
        simkit::faults::clear();
        // The infallible path retries the burst internally, charging the
        // spikes as start-time delay.
        simkit::faults::install(FaultPlan::default().with(
            Trigger::SiteHit(FaultSite::RdmaRead, 0),
            Action::RdmaTransient {
                failures: 1,
                spike_ns: 700,
            },
        ));
        let a = p.read(0, 0, &mut buf, SimTime::ZERO);
        assert!(a.end.as_nanos() >= 700);
        simkit::faults::clear();
    }

    #[test]
    fn dead_host_rdma_is_frozen() {
        use simkit::faults::{self, FaultPlan};
        faults::clear();
        let mut p = RdmaPool::new(1 << 20, 1);
        p.write(0, 0, b"keep", SimTime::ZERO);
        faults::install(FaultPlan::crash_at_hit(0));
        // First gate poll crashes the host: the write must not land.
        p.write(0, 0, b"lost", SimTime(9));
        let mut buf = [0u8; 4];
        let a = p.read(0, 0, &mut buf, SimTime(9));
        assert_eq!(&buf, b"keep");
        assert_eq!(a.end, SimTime(9));
        faults::clear();
    }

    #[test]
    fn link_flap_stalls_then_heals() {
        use simkit::faults::{Action, FaultPlan, Trigger};
        simkit::faults::clear();
        let mut p = RdmaPool::new(1 << 20, 2);
        p.write(0, 0, b"x", SimTime::ZERO);
        simkit::faults::install(FaultPlan::default().with(
            Trigger::SiteHit(FaultSite::RdmaLink, 0),
            Action::LinkFlap {
                host: 0,
                down_ns: 10_000,
                retry_ns: 1_000,
            },
        ));
        let mut buf = [0u8; 1];
        // Typed path: the outage surfaces as a transient with the retry
        // interval as its spike.
        assert_eq!(
            p.try_read(0, 0, &mut buf, SimTime::ZERO),
            Err(RdmaError::Transient { spike_ns: 1_000 })
        );
        // Other hosts' NICs are unaffected.
        assert!(p.try_read(1, 0, &mut buf, SimTime::ZERO).is_ok());
        // The infallible path retries through the outage and terminates.
        let a = p.read(0, 0, &mut buf, SimTime(1_000));
        assert!(a.end.as_nanos() >= 10_000, "{a:?}");
        assert_eq!(&buf, b"x");
        simkit::faults::clear();
    }

    #[test]
    fn link_degrade_multiplies_latency() {
        use simkit::faults::{Action, FaultPlan, Trigger};
        simkit::faults::clear();
        let mut p = RdmaPool::new(1 << 20, 1);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        let healthy = p.read(0, 0, &mut buf, SimTime::ZERO).end.as_nanos();
        let mut p = RdmaPool::new(1 << 20, 1);
        simkit::faults::install(FaultPlan::default().with(
            Trigger::SiteHit(FaultSite::RdmaLink, 0),
            Action::LinkDegrade {
                host: 0,
                factor: 3,
                heal_ns: u64::MAX,
            },
        ));
        let degraded = p.read(0, 0, &mut buf, SimTime::ZERO).end.as_nanos();
        assert_eq!(degraded, healthy * 3, "{degraded} vs {healthy}");
        simkit::faults::clear();
    }

    #[test]
    fn latency_matches_table2() {
        let mut p = RdmaPool::new(1 << 20, 1);
        let mut b64 = [0u8; 64];
        let r64 = p.read(0, 0, &mut b64, SimTime::ZERO).end.as_nanos();
        // Paper: 4.55 µs.
        assert!((4_200..5_100).contains(&r64), "{r64}");
        let mut p2 = RdmaPool::new(1 << 20, 1);
        let mut b16k = vec![0u8; PAGE_SIZE as usize];
        let r16k = p2.read(0, 0, &mut b16k, SimTime::ZERO).end.as_nanos();
        // Paper: 7.13 µs; the fit is conservative-low but well-ordered.
        assert!((5_500..7_500).contains(&r16k), "{r16k}");
        assert!(r16k > r64);
    }

    #[test]
    fn nic_is_a_shared_bottleneck() {
        let mut p = RdmaPool::new(1 << 24, 1);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        // Issue 1000 page reads at t=0: they serialize on the pipe.
        let mut last = SimTime::ZERO;
        for i in 0..1000 {
            last = p.read(0, i * PAGE_SIZE, &mut buf, SimTime::ZERO).end;
        }
        // 1000 * (250ns + 16384/12 ns) ≈ 1.6 ms of pipe time.
        assert!(last.as_nanos() > dur::MS, "{last}");
        assert_eq!(p.nic_bytes(0), 1000 * PAGE_SIZE);
    }

    #[test]
    fn hosts_have_independent_nics() {
        let mut p = RdmaPool::new(1 << 24, 2);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        let a = p.read(0, 0, &mut buf, SimTime::ZERO).end;
        let b = p.read(1, 0, &mut buf, SimTime::ZERO).end;
        // No cross-host queueing.
        assert_eq!(a, b);
    }

    #[test]
    fn shard_writes_commit_at_the_barrier_in_host_order() {
        let mut p = RdmaPool::new(1 << 20, 3);
        p.write(2, 0, &[9u8; 8], SimTime::ZERO);
        let mut s0 = p.detach_host(0, 2);
        let mut s1 = p.detach_host(1, 2);
        s0.try_write(0, &[1u8; 8], SimTime::ZERO).unwrap();
        s1.try_write(4, &[2u8; 8], SimTime::ZERO).unwrap();
        // Own writes visible immediately; the peer's not yet.
        let mut b = [0u8; 8];
        s0.try_read(0, &mut b, SimTime::ZERO).unwrap();
        assert_eq!(b, [1u8; 8]);
        s1.try_read(0, &mut b, SimTime::ZERO).unwrap();
        assert_eq!(b, [9, 9, 9, 9, 2, 2, 2, 2]);
        // The region still holds the pre-phase bytes.
        let mut r = [0u8; 8];
        p.raw().read(0, &mut r);
        assert_eq!(r, [9u8; 8]);
        // Barrier: host order fixes the overlap (s1's store lands last).
        let mut shards = [s0, s1];
        p.barrier(&mut shards);
        let mut r = [0u8; 12];
        p.raw().read(0, &mut r);
        assert_eq!(r, [1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn shard_nic_backlog_merges_to_the_serial_total() {
        // Serial reference.
        let mut serial = RdmaPool::new(1 << 24, 3);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        for _ in 0..4 {
            serial.read(0, 0, &mut buf, SimTime::ZERO);
        }
        // Phased: the same four reads via a shard, committed at a barrier.
        let mut p = RdmaPool::new(1 << 24, 3);
        let mut s0 = p.detach_host(0, 2);
        let mut last = SimTime::ZERO;
        for _ in 0..4 {
            last = s0.try_read(0, &mut buf, SimTime::ZERO).unwrap().end;
        }
        p.attach_host(s0);
        // Backlog and counters equal the serial run's.
        assert_eq!(p.nic_bytes(0), serial.nic_bytes(0));
        let probe = p.read(0, 0, &mut buf, SimTime::ZERO).end;
        let probe_serial = serial.read(0, 0, &mut buf, SimTime::ZERO).end;
        assert_eq!(probe, probe_serial);
        assert!(probe > last, "the fifth read queues behind the merged four");
    }

    #[test]
    fn shard_messages_share_the_server_nic() {
        let mut p = RdmaPool::new(1 << 20, 3);
        let mut s0 = p.detach_host(0, 2);
        let mut s1 = p.detach_host(1, 2);
        use super::RdmaFabric;
        s0.message(2, SimTime::ZERO);
        s1.message(2, SimTime::ZERO);
        let before = p.nic_bytes(2);
        p.attach_host(s0);
        p.attach_host(s1);
        // Both messages land on the server host's tx pipe.
        assert_eq!(p.nic_bytes(2), before + 128);
        // And the serial-equivalent backlog: a third message queues
        // behind both, exactly as if all three were sent on the pool.
        let mut serial = RdmaPool::new(1 << 20, 3);
        serial.message(2, SimTime::ZERO);
        serial.message(2, SimTime::ZERO);
        assert_eq!(
            p.message(2, SimTime::ZERO),
            serial.message(2, SimTime::ZERO)
        );
    }

    #[test]
    fn duplex_directions_do_not_queue_each_other() {
        let mut p = RdmaPool::new(1 << 24, 1);
        let big = vec![0u8; 1 << 20];
        let w = p.write(0, 0, &big, SimTime::ZERO).end;
        let mut buf = vec![0u8; 1 << 20];
        let r = p.read(0, 0, &mut buf, SimTime::ZERO).end;
        // Both directions start at t=0 and take similar time.
        let ratio = w.as_nanos() as f64 / r.as_nanos() as f64;
        assert!((0.9..1.1).contains(&ratio), "{ratio}");
    }
}
