//! The RDMA disaggregated-memory baseline fabric (§2.2).
//!
//! [`RdmaPool`] is the remote memory node reachable over per-host RDMA
//! NICs. Unlike CXL there is no load/store path: data must be *moved* —
//! whole buffers are DMA-copied between the remote region and local
//! DRAM, paying the Table 2 latency profile and consuming NIC bandwidth
//! (12 GB/s per direction on a ConnectX-6). The per-op serialization term
//! models doorbell/WQE contention, the reason IOPS-bound RDMA stops
//! scaling (§2.2, limitation 3).

use crate::calib::{RDMA_NIC_GBPS, RDMA_PER_OP_NS, RDMA_READ_BASE_NS, RDMA_WRITE_BASE_NS};
use crate::region::Region;
use crate::Access;
use simkit::faults::{self, FaultSite, Verdict};
use simkit::trace::{self, Lane, SpanKind};
use simkit::{Link, SimTime};

/// Typed failure of an RDMA operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaError {
    /// Transient NIC/fabric error: the attempt failed after burning
    /// `spike_ns` of extra latency; the caller retries (with backoff)
    /// or falls back to storage.
    Transient {
        /// Latency the failed attempt cost, in nanoseconds.
        spike_ns: u64,
    },
}

impl std::fmt::Display for RdmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdmaError::Transient { spike_ns } => {
                write!(f, "transient rdma fault (+{spike_ns} ns)")
            }
        }
    }
}

impl std::error::Error for RdmaError {}

/// Remote memory pool behind per-host RDMA NICs.
#[derive(Debug)]
pub struct RdmaPool {
    region: Region,
    /// Per host: (read-direction link, write-direction link). Full-duplex
    /// NIC modelled as two pipes.
    nics: Vec<(Link, Link)>,
}

impl RdmaPool {
    /// A pool of `size` bytes reachable from `hosts` hosts.
    pub fn new(size: usize, hosts: usize) -> Self {
        assert!(hosts > 0);
        RdmaPool {
            // The remote memory node is a separate machine: it survives
            // *compute host* crashes (like the paper's RDMA baselines).
            region: Region::persistent(size),
            nics: (0..hosts)
                .map(|_| {
                    (
                        Link::new("rdma-rx", RDMA_NIC_GBPS)
                            .with_per_op_overhead(RDMA_PER_OP_NS)
                            .with_propagation(RDMA_READ_BASE_NS),
                        Link::new("rdma-tx", RDMA_NIC_GBPS)
                            .with_per_op_overhead(RDMA_PER_OP_NS)
                            .with_propagation(RDMA_WRITE_BASE_NS),
                    )
                })
                .collect(),
        }
    }

    /// Pool size in bytes.
    pub fn len(&self) -> usize {
        self.region.len()
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// Raw region (tests / bulk load, no timing).
    pub fn raw(&self) -> &Region {
        &self.region
    }

    /// Raw mutable region (no timing).
    pub fn raw_mut(&mut self) -> &mut Region {
        &mut self.region
    }

    /// RDMA read with typed fault propagation: like [`RdmaPool::read`],
    /// but a transient fabric fault surfaces as an error (carrying the
    /// latency the failed attempt burned) instead of being retried
    /// internally.
    pub fn try_read(
        &mut self,
        host: usize,
        off: u64,
        buf: &mut [u8],
        now: SimTime,
    ) -> Result<Access, RdmaError> {
        let factor = Self::link_gate(host, now)?;
        match faults::gate(FaultSite::RdmaRead, now) {
            Verdict::Run => {
                let mut a = self.read_inner(host, off, buf, now);
                Self::degrade(&mut a, now, factor);
                Ok(a)
            }
            Verdict::Transient { spike_ns } => Err(RdmaError::Transient { spike_ns }),
            // Dead: the host still sees the remote node's (surviving)
            // bytes, but nothing is timed or queued any more.
            _ => {
                self.region.read(off, buf);
                Ok(Access::free(now))
            }
        }
    }

    /// RDMA read: copy `buf.len()` bytes from remote `off` into `buf`
    /// over `host`'s NIC. Transient faults are retried in place (the
    /// burst is finite by construction); use [`RdmaPool::try_read`] for
    /// typed propagation.
    pub fn read(&mut self, host: usize, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        let mut now = now;
        loop {
            match self.try_read(host, off, buf, now) {
                Ok(a) => return a,
                Err(RdmaError::Transient { spike_ns }) => now += spike_ns,
            }
        }
    }

    fn read_inner(&mut self, host: usize, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        let _prof = simkit::profile::scope(simkit::profile::Subsys::Rdma);
        self.region.read(off, buf);
        let g = self.nics[host].0.transfer(now, buf.len() as u64);
        // Attribution leaf: the whole delta (protocol base + per-op +
        // bandwidth queueing) is NIC time.
        trace::attr_add(Lane::RdmaNic, g.end.saturating_since(now));
        trace::span(
            SpanKind::RdmaPageIn,
            host as u32,
            now,
            g.end,
            buf.len() as u64,
        );
        Access {
            end: g.end,
            link_bytes: buf.len() as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// RDMA write with typed fault propagation: like
    /// [`RdmaPool::write`], but a transient fabric fault surfaces as an
    /// error instead of being retried internally. A dead host's writes
    /// never reach the remote node.
    pub fn try_write(
        &mut self,
        host: usize,
        off: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<Access, RdmaError> {
        let factor = Self::link_gate(host, now)?;
        match faults::gate(FaultSite::RdmaWrite, now) {
            Verdict::Run => {
                let mut a = self.write_inner(host, off, data, now);
                Self::degrade(&mut a, now, factor);
                Ok(a)
            }
            Verdict::Transient { spike_ns } => Err(RdmaError::Transient { spike_ns }),
            _ => Ok(Access::free(now)),
        }
    }

    /// Poll this host's NIC link health. An outage surfaces as a typed
    /// transient error whose spike is the retry interval — the caller's
    /// existing retry/backoff/fallback machinery handles it (and the
    /// infallible paths terminate because retries advance `now` past
    /// the outage). A degrade returns the latency multiplier.
    fn link_gate(host: usize, now: SimTime) -> Result<u64, RdmaError> {
        match faults::link_health(FaultSite::RdmaLink, host as u32, now) {
            faults::LinkHealth::Healthy => Ok(1),
            faults::LinkHealth::Degraded { factor } => Ok(factor as u64),
            faults::LinkHealth::Down { retry_ns, .. } => {
                Err(RdmaError::Transient { spike_ns: retry_ns })
            }
        }
    }

    /// Stretch a completed transfer by the degrade factor, charging the
    /// slowdown to the NIC attribution lane.
    fn degrade(a: &mut Access, now: SimTime, factor: u64) {
        if factor > 1 {
            let delta = a.end.saturating_since(now);
            let extra = delta.saturating_mul(factor - 1);
            a.end += extra;
            trace::attr_add(Lane::RdmaNic, extra);
        }
    }

    /// RDMA write: copy `data` to remote `off` over `host`'s NIC.
    /// Transient faults are retried in place; use
    /// [`RdmaPool::try_write`] for typed propagation.
    pub fn write(&mut self, host: usize, off: u64, data: &[u8], now: SimTime) -> Access {
        let mut now = now;
        loop {
            match self.try_write(host, off, data, now) {
                Ok(a) => return a,
                Err(RdmaError::Transient { spike_ns }) => now += spike_ns,
            }
        }
    }

    fn write_inner(&mut self, host: usize, off: u64, data: &[u8], now: SimTime) -> Access {
        let _prof = simkit::profile::scope(simkit::profile::Subsys::Rdma);
        self.region.write(off, data);
        let g = self.nics[host].1.transfer(now, data.len() as u64);
        trace::attr_add(Lane::RdmaNic, g.end.saturating_since(now));
        trace::span(
            SpanKind::RdmaPageOut,
            host as u32,
            now,
            g.end,
            data.len() as u64,
        );
        Access {
            end: g.end,
            link_bytes: data.len() as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// A small control message (e.g. a page-invalidation RPC in the
    /// RDMA-based coherency protocol) — costs a round trip but no bulk
    /// bandwidth.
    pub fn message(&mut self, host: usize, now: SimTime) -> SimTime {
        if faults::crashed() {
            return now;
        }
        let mut now = now;
        let factor = loop {
            match Self::link_gate(host, now) {
                Ok(f) => break f,
                // Outage: the sender retries the doorbell until the NIC
                // returns; each attempt burns the backoff interval.
                Err(RdmaError::Transient { spike_ns }) => now += spike_ns,
            }
        };
        let end = self.nics[host].1.transfer(now, 64).end;
        trace::attr_add(Lane::RdmaNic, end.saturating_since(now));
        let mut a = Access {
            end,
            link_bytes: 64,
            hits: 0,
            misses: 0,
        };
        // `degrade` charges the slowdown to the NIC lane itself.
        Self::degrade(&mut a, now, factor);
        trace::span(SpanKind::RdmaMsg, host as u32, now, a.end, 64);
        a.end
    }

    /// Bytes moved through a host's NIC (both directions).
    pub fn nic_bytes(&self, host: usize) -> u64 {
        self.nics[host].0.bytes() + self.nics[host].1.bytes()
    }

    /// Total bytes through every NIC.
    pub fn total_bytes(&self) -> u64 {
        (0..self.nics.len()).map(|h| self.nic_bytes(h)).sum()
    }

    /// Reset NIC byte counters and backlog clocks (between an untimed
    /// setup phase and a measurement window).
    pub fn reset_link_counters(&mut self) {
        for (rx, tx) in &mut self.nics {
            rx.reset_counters();
            rx.reset_queue();
            tx.reset_counters();
            tx.reset_queue();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::PAGE_SIZE;
    use simkit::dur;

    #[test]
    fn roundtrip() {
        let mut p = RdmaPool::new(1 << 20, 1);
        p.write(0, 4096, b"remote", SimTime::ZERO);
        let mut buf = [0u8; 6];
        p.read(0, 4096, &mut buf, SimTime::ZERO);
        assert_eq!(&buf, b"remote");
    }

    #[test]
    fn transient_faults_surface_typed_and_heal() {
        use simkit::faults::{Action, FaultPlan, Trigger};
        simkit::faults::clear();
        let mut p = RdmaPool::new(1 << 20, 1);
        p.write(0, 0, b"x", SimTime::ZERO);
        simkit::faults::install(FaultPlan::default().with(
            Trigger::SiteHit(FaultSite::RdmaRead, 0),
            Action::RdmaTransient {
                failures: 2,
                spike_ns: 500,
            },
        ));
        let mut buf = [0u8; 1];
        assert_eq!(
            p.try_read(0, 0, &mut buf, SimTime::ZERO),
            Err(RdmaError::Transient { spike_ns: 500 })
        );
        assert_eq!(
            p.try_read(0, 0, &mut buf, SimTime::ZERO),
            Err(RdmaError::Transient { spike_ns: 500 })
        );
        let a = p.try_read(0, 0, &mut buf, SimTime::ZERO).expect("healed");
        assert_eq!(&buf, b"x");
        assert!(a.end > SimTime::ZERO);
        simkit::faults::clear();
        // The infallible path retries the burst internally, charging the
        // spikes as start-time delay.
        simkit::faults::install(FaultPlan::default().with(
            Trigger::SiteHit(FaultSite::RdmaRead, 0),
            Action::RdmaTransient {
                failures: 1,
                spike_ns: 700,
            },
        ));
        let a = p.read(0, 0, &mut buf, SimTime::ZERO);
        assert!(a.end.as_nanos() >= 700);
        simkit::faults::clear();
    }

    #[test]
    fn dead_host_rdma_is_frozen() {
        use simkit::faults::{self, FaultPlan};
        faults::clear();
        let mut p = RdmaPool::new(1 << 20, 1);
        p.write(0, 0, b"keep", SimTime::ZERO);
        faults::install(FaultPlan::crash_at_hit(0));
        // First gate poll crashes the host: the write must not land.
        p.write(0, 0, b"lost", SimTime(9));
        let mut buf = [0u8; 4];
        let a = p.read(0, 0, &mut buf, SimTime(9));
        assert_eq!(&buf, b"keep");
        assert_eq!(a.end, SimTime(9));
        faults::clear();
    }

    #[test]
    fn link_flap_stalls_then_heals() {
        use simkit::faults::{Action, FaultPlan, Trigger};
        simkit::faults::clear();
        let mut p = RdmaPool::new(1 << 20, 2);
        p.write(0, 0, b"x", SimTime::ZERO);
        simkit::faults::install(FaultPlan::default().with(
            Trigger::SiteHit(FaultSite::RdmaLink, 0),
            Action::LinkFlap {
                host: 0,
                down_ns: 10_000,
                retry_ns: 1_000,
            },
        ));
        let mut buf = [0u8; 1];
        // Typed path: the outage surfaces as a transient with the retry
        // interval as its spike.
        assert_eq!(
            p.try_read(0, 0, &mut buf, SimTime::ZERO),
            Err(RdmaError::Transient { spike_ns: 1_000 })
        );
        // Other hosts' NICs are unaffected.
        assert!(p.try_read(1, 0, &mut buf, SimTime::ZERO).is_ok());
        // The infallible path retries through the outage and terminates.
        let a = p.read(0, 0, &mut buf, SimTime(1_000));
        assert!(a.end.as_nanos() >= 10_000, "{a:?}");
        assert_eq!(&buf, b"x");
        simkit::faults::clear();
    }

    #[test]
    fn link_degrade_multiplies_latency() {
        use simkit::faults::{Action, FaultPlan, Trigger};
        simkit::faults::clear();
        let mut p = RdmaPool::new(1 << 20, 1);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        let healthy = p.read(0, 0, &mut buf, SimTime::ZERO).end.as_nanos();
        let mut p = RdmaPool::new(1 << 20, 1);
        simkit::faults::install(FaultPlan::default().with(
            Trigger::SiteHit(FaultSite::RdmaLink, 0),
            Action::LinkDegrade {
                host: 0,
                factor: 3,
                heal_ns: u64::MAX,
            },
        ));
        let degraded = p.read(0, 0, &mut buf, SimTime::ZERO).end.as_nanos();
        assert_eq!(degraded, healthy * 3, "{degraded} vs {healthy}");
        simkit::faults::clear();
    }

    #[test]
    fn latency_matches_table2() {
        let mut p = RdmaPool::new(1 << 20, 1);
        let mut b64 = [0u8; 64];
        let r64 = p.read(0, 0, &mut b64, SimTime::ZERO).end.as_nanos();
        // Paper: 4.55 µs.
        assert!((4_200..5_100).contains(&r64), "{r64}");
        let mut p2 = RdmaPool::new(1 << 20, 1);
        let mut b16k = vec![0u8; PAGE_SIZE as usize];
        let r16k = p2.read(0, 0, &mut b16k, SimTime::ZERO).end.as_nanos();
        // Paper: 7.13 µs; the fit is conservative-low but well-ordered.
        assert!((5_500..7_500).contains(&r16k), "{r16k}");
        assert!(r16k > r64);
    }

    #[test]
    fn nic_is_a_shared_bottleneck() {
        let mut p = RdmaPool::new(1 << 24, 1);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        // Issue 1000 page reads at t=0: they serialize on the pipe.
        let mut last = SimTime::ZERO;
        for i in 0..1000 {
            last = p.read(0, i * PAGE_SIZE, &mut buf, SimTime::ZERO).end;
        }
        // 1000 * (250ns + 16384/12 ns) ≈ 1.6 ms of pipe time.
        assert!(last.as_nanos() > dur::MS, "{last}");
        assert_eq!(p.nic_bytes(0), 1000 * PAGE_SIZE);
    }

    #[test]
    fn hosts_have_independent_nics() {
        let mut p = RdmaPool::new(1 << 24, 2);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        let a = p.read(0, 0, &mut buf, SimTime::ZERO).end;
        let b = p.read(1, 0, &mut buf, SimTime::ZERO).end;
        // No cross-host queueing.
        assert_eq!(a, b);
    }

    #[test]
    fn duplex_directions_do_not_queue_each_other() {
        let mut p = RdmaPool::new(1 << 24, 1);
        let big = vec![0u8; 1 << 20];
        let w = p.write(0, 0, &big, SimTime::ZERO).end;
        let mut buf = vec![0u8; 1 << 20];
        let r = p.read(0, 0, &mut buf, SimTime::ZERO).end;
        // Both directions start at t=0 and take similar time.
        let ratio = w.as_nanos() as f64 / r.as_nanos() as f64;
        assert!((0.9..1.1).contains(&ratio), "{ratio}");
    }
}
