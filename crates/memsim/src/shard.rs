//! Phase-private views of a shared [`Region`] for barrier-synchronized
//! parallel stepping (see [`simkit::par`]).
//!
//! Between virtual-time barriers each simulated node runs on its own host
//! thread against a *private* view of the shared memory region:
//!
//! - a [`RegionReader`] — an immutable raw-pointer window over the region
//!   bytes, shareable across threads;
//! - a [`WriteLog`] — the node's pending stores, applied to the real
//!   region at the barrier in fixed node order.
//!
//! Reads go through [`WriteLog::read_through`], which patches the node's
//! *own* pending stores over the base bytes: a node always observes its
//! own writes immediately (program order), while peers' writes become
//! visible at the next barrier — a bounded staleness of at most one
//! quantum, identical for every host-thread count. Timing never depends
//! on page *content*, and content-correctness oracles run after the final
//! barrier, so the lag is a model choice, not a race.

use crate::region::Region;

/// A shareable immutable window over a region's bytes.
///
/// # Safety contract
///
/// A `RegionReader` borrows nothing: it captures a raw pointer. It is
/// only valid while the region it was derived from is neither mutated
/// nor moved. Drivers uphold this by re-deriving every reader at each
/// barrier (after [`WriteLog::apply`] runs) and never touching the
/// region mid-phase.
#[derive(Debug, Clone, Copy)]
pub struct RegionReader {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the pointed-to bytes are immutable for the reader's whole
// validity window (see the struct-level safety contract), so concurrent
// reads from any thread are data-race free.
unsafe impl Send for RegionReader {}
unsafe impl Sync for RegionReader {}

impl RegionReader {
    /// Capture a read-only window over `region`'s current storage.
    pub fn new(region: &Region) -> Self {
        let s = region.slice(0, region.len());
        RegionReader {
            ptr: s.as_ptr(),
            len: s.len(),
        }
    }

    /// Window size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy `buf.len()` bytes starting at `off` into `buf`.
    ///
    /// # Panics
    /// On out-of-bounds access, matching [`Region::read`].
    #[inline]
    pub fn read(&self, off: u64, buf: &mut [u8]) {
        let off = off as usize;
        assert!(
            off.checked_add(buf.len())
                .is_some_and(|end| end <= self.len),
            "RegionReader::read out of bounds: off={off} len={} size={}",
            buf.len(),
            self.len
        );
        // SAFETY: bounds checked above; validity per the struct contract.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(off), buf.as_mut_ptr(), buf.len());
        }
    }
}

/// One node's pending stores for the current quantum.
///
/// Stores append to a byte arena; [`WriteLog::apply`] replays them onto
/// the real region in program order at the barrier. Capacity is retained
/// across quanta, so the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct WriteLog {
    /// `(region_off, arena_off, len)` in program order.
    entries: Vec<(u64, usize, usize)>,
    arena: Vec<u8>,
}

impl WriteLog {
    /// An empty log.
    pub fn new() -> Self {
        WriteLog::default()
    }

    /// Whether any stores are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of pending stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Record a store of `data` at `off`.
    pub fn write(&mut self, off: u64, data: &[u8]) {
        let a = self.arena.len();
        self.arena.extend_from_slice(data);
        self.entries.push((off, a, data.len()));
    }

    /// Read `buf.len()` bytes at `off`: base bytes, patched with this
    /// log's pending stores in program order (read-your-own-writes).
    pub fn read_through(&self, base: &RegionReader, off: u64, buf: &mut [u8]) {
        base.read(off, buf);
        let end = off + buf.len() as u64;
        for &(eoff, aoff, len) in &self.entries {
            let eend = eoff + len as u64;
            if eoff < end && off < eend {
                let s = eoff.max(off);
                let e = eend.min(end);
                let src = &self.arena[aoff + (s - eoff) as usize..][..(e - s) as usize];
                buf[(s - off) as usize..(e - off) as usize].copy_from_slice(src);
            }
        }
    }

    /// Replay every pending store onto `region` in program order and
    /// clear the log (retaining capacity).
    pub fn apply(&mut self, region: &mut Region) {
        for &(off, aoff, len) in &self.entries {
            region.write(off, &self.arena[aoff..aoff + len]);
        }
        self.entries.clear();
        self.arena.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_through_patches_own_writes_in_program_order() {
        let mut region = Region::persistent(256);
        region.write(0, &[1u8; 256]);
        let reader = RegionReader::new(&region);
        let mut log = WriteLog::new();
        log.write(10, &[2u8; 8]);
        log.write(12, &[3u8; 2]); // overlaps: later store wins
        let mut buf = [0u8; 16];
        log.read_through(&reader, 8, &mut buf);
        assert_eq!(buf[0..2], [1, 1]); // untouched base
        assert_eq!(buf[2..4], [2, 2]); // first store
        assert_eq!(buf[4..6], [3, 3]); // second store over it
        assert_eq!(buf[6..10], [2, 2, 2, 2]); // rest of first store
        assert_eq!(buf[10..], [1; 6]); // base again
    }

    #[test]
    fn apply_replays_and_clears() {
        let mut region = Region::persistent(64);
        let mut log = WriteLog::new();
        log.write(0, &[5u8; 4]);
        log.write(2, &[6u8; 4]);
        assert_eq!(log.len(), 2);
        log.apply(&mut region);
        assert!(log.is_empty());
        assert_eq!(region.slice(0, 6), &[5, 5, 6, 6, 6, 6]);
        // Region state now matches what read_through showed mid-quantum.
    }

    #[test]
    fn reader_matches_region_reads() {
        let mut region = Region::volatile(128);
        region.write(40, b"abcdef");
        let reader = RegionReader::new(&region);
        let mut a = [0u8; 6];
        let mut b = [0u8; 6];
        reader.read(40, &mut a);
        region.read(40, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn reader_out_of_bounds_panics() {
        let region = Region::volatile(8);
        let reader = RegionReader::new(&region);
        let mut buf = [0u8; 4];
        reader.read(6, &mut buf);
    }
}
