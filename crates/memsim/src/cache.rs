//! CPU cache model.
//!
//! A direct-mapped, write-back cache over a memory region's address space,
//! with 64-byte lines. Two modes:
//!
//! - **Timing mode** (default): only tags are tracked. Reads/writes still
//!   go to the backing region immediately; the tag array decides whether
//!   an access costs a cache hit or a fabric miss, and how many bytes hit
//!   the link. Used for the single-node pooling experiments.
//! - **Capture mode**: the cache additionally stores *copies of line
//!   data*. Reads are served from the copies and writes land only in the
//!   copies until written back (eviction or `clflush`). This makes cache
//!   coherency *real*: a node that skips the paper's invalidation protocol
//!   observably reads stale data. Used by the multi-primary sharing
//!   experiments and their tests (§3.3).

use crate::calib::CACHE_LINE;
use simkit::FastMap;

/// What a line access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineAccess {
    /// Line was present.
    Hit,
    /// Line was absent; filled. If a dirty victim was evicted, its line
    /// index is reported so the caller can write it back.
    Miss {
        /// Dirty victim line that must be written back, if any.
        evicted_dirty: Option<u64>,
    },
}

/// Outcome of a contiguous run of line accesses ([`Cache::access_run`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunAccess {
    /// Lines that hit.
    pub hits: u64,
    /// Lines that missed (and were filled).
    pub misses: u64,
    /// Dirty victims evicted by the fills (each needs a writeback).
    pub dirty_evictions: u64,
    /// Whether the first line of the run missed.
    pub first_missed: bool,
    /// Whether the last line of the run missed.
    pub last_missed: bool,
}

/// Aggregate cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Line accesses that hit.
    pub hits: u64,
    /// Line accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Dirty lines written back by `clflush`.
    pub flushes: u64,
    /// Lines invalidated (clean or after flush).
    pub invalidations: u64,
}

#[derive(Clone, Copy)]
struct Slot {
    /// Line index + 1; 0 = invalid.
    tag: u64,
    dirty: bool,
}

/// Direct-mapped write-back cache. Addresses are byte offsets into the
/// backing region; lines are [`CACHE_LINE`] bytes.
pub struct Cache {
    slots: Vec<Slot>,
    /// `slots.len() - 1` when the set count is a power of two (the common
    /// case for real cache sizes), letting the per-line set lookup use a
    /// mask instead of a 64-bit modulo. Purely an addressing shortcut:
    /// `line & mask == line % len` whenever `len` is a power of two.
    set_mask: Option<u64>,
    data: Option<FastMap<u64, Box<[u8]>>>,
    stats: CacheStats,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("sets", &self.slots.len())
            .field("capture", &self.data.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Cache {
    /// A timing-only cache of `capacity_bytes` (rounded down to lines).
    pub fn new(capacity_bytes: usize) -> Self {
        let sets = (capacity_bytes / CACHE_LINE as usize).max(1);
        Cache {
            slots: vec![
                Slot {
                    tag: 0,
                    dirty: false
                };
                sets
            ],
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            data: None,
            stats: CacheStats::default(),
        }
    }

    /// A data-capturing cache (see module docs).
    pub fn with_capture(capacity_bytes: usize) -> Self {
        let mut c = Cache::new(capacity_bytes);
        c.data = Some(FastMap::default());
        c
    }

    /// Whether this cache stores line data copies.
    pub fn captures(&self) -> bool {
        self.data.is_some()
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.slots.len() as u64) as usize,
        }
    }

    /// Touch `line` (byte offset / 64). Returns whether it hit, and any
    /// dirty victim the caller must write back *before* the fill.
    pub fn access(&mut self, line: u64, write: bool) -> LineAccess {
        let set = self.set_of(line);
        let slot = &mut self.slots[set];
        if slot.tag == line + 1 {
            self.stats.hits += 1;
            if write {
                slot.dirty = true;
            }
            return LineAccess::Hit;
        }
        // Miss: evict current occupant.
        let evicted_dirty = if slot.tag != 0 && slot.dirty {
            self.stats.writebacks += 1;
            Some(slot.tag - 1)
        } else {
            None
        };
        if slot.tag != 0 {
            if let Some(data) = &mut self.data {
                if evicted_dirty.is_none() {
                    // Clean eviction: drop the stale copy.
                    data.remove(&(slot.tag - 1));
                }
                // Dirty copies are removed by `take_line` during writeback.
            }
        }
        slot.tag = line + 1;
        slot.dirty = write;
        self.stats.misses += 1;
        LineAccess::Miss { evicted_dirty }
    }

    /// Touch a contiguous run of lines in order, exactly as repeated
    /// [`Cache::access`] calls would — including intra-run aliasing,
    /// where a later line of the run evicts an earlier one — but with a
    /// single stats update and no per-line enum dispatch. Timing mode
    /// only: capture mode needs the per-line data plumbing.
    pub fn access_run(&mut self, lines: std::ops::Range<u64>, write: bool) -> RunAccess {
        debug_assert!(self.data.is_none(), "access_run is timing-mode only");
        let n_sets = self.slots.len() as u64;
        let mask = self.set_mask;
        let first = lines.start;
        let last = lines.end.saturating_sub(1);
        let mut run = RunAccess::default();
        for line in lines {
            let set = match mask {
                Some(m) => (line & m) as usize,
                None => (line % n_sets) as usize,
            };
            let slot = &mut self.slots[set];
            if slot.tag == line + 1 {
                run.hits += 1;
                if write {
                    slot.dirty = true;
                }
            } else {
                if slot.tag != 0 && slot.dirty {
                    run.dirty_evictions += 1;
                }
                slot.tag = line + 1;
                slot.dirty = write;
                run.misses += 1;
                if line == first {
                    run.first_missed = true;
                }
                if line == last {
                    run.last_missed = true;
                }
            }
        }
        self.stats.hits += run.hits;
        self.stats.misses += run.misses;
        self.stats.writebacks += run.dirty_evictions;
        run
    }

    /// Whether `line` is currently cached.
    pub fn contains(&self, line: u64) -> bool {
        self.slots[self.set_of(line)].tag == line + 1
    }

    /// Whether `line` is cached and dirty.
    pub fn is_dirty(&self, line: u64) -> bool {
        let s = &self.slots[self.set_of(line)];
        s.tag == line + 1 && s.dirty
    }

    /// Flush-and-invalidate one line (the `clflush` instruction, §3.3).
    /// Returns `true` when the line was present and dirty (the caller must
    /// write its data back to the region).
    pub fn clflush(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let slot = &mut self.slots[set];
        if slot.tag != line + 1 {
            return false;
        }
        let was_dirty = slot.dirty;
        slot.tag = 0;
        slot.dirty = false;
        self.stats.invalidations += 1;
        if was_dirty {
            self.stats.flushes += 1;
        } else if let Some(data) = &mut self.data {
            data.remove(&line);
        }
        was_dirty
    }

    /// Drop a line without writing back (pure invalidation; used on the
    /// reader side of the coherency protocol where lines are clean).
    pub fn invalidate(&mut self, line: u64) {
        let set = self.set_of(line);
        let slot = &mut self.slots[set];
        if slot.tag == line + 1 {
            slot.tag = 0;
            slot.dirty = false;
            self.stats.invalidations += 1;
            if let Some(data) = &mut self.data {
                data.remove(&line);
            }
        }
    }

    /// Crash: all contents (including dirty lines) vanish without
    /// writeback — exactly what happens to a host's CPU cache on power
    /// loss while the CXL box stays up.
    pub fn crash(&mut self) {
        for s in &mut self.slots {
            s.tag = 0;
            s.dirty = false;
        }
        if let Some(data) = &mut self.data {
            data.clear();
        }
    }

    // ----- capture-mode data plumbing -------------------------------

    /// Install a data copy for `line` (after a miss fill). Capture mode
    /// only.
    pub fn put_line(&mut self, line: u64, bytes: &[u8]) {
        debug_assert_eq!(bytes.len(), CACHE_LINE as usize);
        if let Some(data) = &mut self.data {
            data.insert(line, bytes.into());
        }
    }

    /// Borrow the cached copy of `line`, if capturing and present.
    pub fn line(&self, line: u64) -> Option<&[u8]> {
        self.data.as_ref()?.get(&line).map(|b| &**b)
    }

    /// Mutably borrow the cached copy of `line`.
    pub fn line_mut(&mut self, line: u64) -> Option<&mut [u8]> {
        self.data.as_mut()?.get_mut(&line).map(|b| &mut **b)
    }

    /// Remove and return the data copy of `line` (for writeback).
    pub fn take_line(&mut self, line: u64) -> Option<Box<[u8]>> {
        self.data.as_mut()?.remove(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(4096);
        assert!(matches!(
            c.access(5, false),
            LineAccess::Miss {
                evicted_dirty: None
            }
        ));
        assert_eq!(c.access(5, false), LineAccess::Hit);
        assert!(c.contains(5));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflicting_lines_evict() {
        // 2 sets: lines 0 and 2 collide.
        let mut c = Cache::new(128);
        c.access(0, true); // dirty
        let out = c.access(2, false);
        assert_eq!(
            out,
            LineAccess::Miss {
                evicted_dirty: Some(0)
            }
        );
        assert!(!c.contains(0));
        assert!(c.contains(2));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_needs_no_writeback() {
        let mut c = Cache::new(128);
        c.access(0, false);
        assert_eq!(
            c.access(2, false),
            LineAccess::Miss {
                evicted_dirty: None
            }
        );
    }

    #[test]
    fn clflush_reports_dirty() {
        let mut c = Cache::new(4096);
        c.access(3, true);
        assert!(c.is_dirty(3));
        assert!(c.clflush(3));
        assert!(!c.contains(3));
        // Second flush is a no-op.
        assert!(!c.clflush(3));
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn clflush_clean_line_invalidates_only() {
        let mut c = Cache::new(4096);
        c.access(3, false);
        assert!(!c.clflush(3));
        assert!(!c.contains(3));
        assert_eq!(c.stats().flushes, 0);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn crash_discards_dirty_lines() {
        let mut c = Cache::with_capture(4096);
        c.access(1, true);
        c.put_line(1, &[7u8; 64]);
        c.crash();
        assert!(!c.contains(1));
        assert!(c.line(1).is_none());
    }

    #[test]
    fn capture_roundtrip() {
        let mut c = Cache::with_capture(4096);
        c.access(9, true);
        c.put_line(9, &[1u8; 64]);
        c.line_mut(9).unwrap()[0] = 42;
        assert_eq!(c.line(9).unwrap()[0], 42);
        let taken = c.take_line(9).unwrap();
        assert_eq!(taken[0], 42);
        assert!(c.line(9).is_none());
    }

    #[test]
    fn capture_drops_copy_on_clean_eviction() {
        let mut c = Cache::with_capture(128);
        c.access(0, false);
        c.put_line(0, &[1u8; 64]);
        c.access(2, false); // evicts line 0 (clean)
        assert!(c.line(0).is_none());
    }

    // ---- access_run vs per-line reference ---------------------------
    //
    // Drives the same sequence of runs through `access_run` and through
    // per-line `access` calls on a twin cache, asserting the returned
    // `RunAccess`, the aggregate stats, and the final tag/dirty state
    // all agree.

    fn assert_run_matches_per_line(capacity: usize, runs: &[(std::ops::Range<u64>, bool)]) {
        let mut batched = Cache::new(capacity);
        let mut per_line = Cache::new(capacity);
        for (range, write) in runs {
            let got = batched.access_run(range.clone(), *write);
            let mut want = RunAccess::default();
            let first = range.start;
            let last = range.end.saturating_sub(1);
            for line in range.clone() {
                match per_line.access(line, *write) {
                    LineAccess::Hit => want.hits += 1,
                    LineAccess::Miss { evicted_dirty } => {
                        want.misses += 1;
                        if evicted_dirty.is_some() {
                            want.dirty_evictions += 1;
                        }
                        if line == first {
                            want.first_missed = true;
                        }
                        if line == last {
                            want.last_missed = true;
                        }
                    }
                }
            }
            assert_eq!(got, want, "range {range:?} write={write}");
        }
        assert_eq!(batched.stats(), per_line.stats());
        let slots = (capacity / CACHE_LINE as usize).max(1) as u64;
        for line in 0..slots * 4 {
            assert_eq!(
                batched.contains(line),
                per_line.contains(line),
                "line {line}"
            );
            assert_eq!(
                batched.is_dirty(line),
                per_line.is_dirty(line),
                "line {line}"
            );
        }
    }

    #[test]
    fn run_empty_range_is_a_no_op() {
        assert_run_matches_per_line(4 << 10, &[(5..5, false), (0..0, true), (7..7, true)]);
        let mut c = Cache::new(4 << 10);
        assert_eq!(c.access_run(9..9, true), RunAccess::default());
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn run_exactly_filling_every_set() {
        // 4 KiB direct-mapped cache = 64 slots; a 64-line run touches
        // each set exactly once.
        let slots = (4usize << 10) / CACHE_LINE as usize;
        assert_eq!(slots, 64);
        assert_run_matches_per_line(
            4 << 10,
            &[
                (0..64, true),   // cold fill of every set, all dirty
                (0..64, false),  // full re-read: 64 hits
                (64..128, true), // aliases every set: 64 dirty evictions
                (64..128, true), // hits again
            ],
        );
    }

    #[test]
    fn run_self_aliasing_within_one_run() {
        // A run longer than the cache: its own tail evicts its own head,
        // including dirty self-evictions mid-run.
        assert_run_matches_per_line(4 << 10, &[(0..130, true), (0..130, false), (63..193, true)]);
    }

    #[test]
    fn run_single_line_and_boundaries() {
        assert_run_matches_per_line(
            4 << 10,
            &[
                (0..1, false),   // single line, first == last, miss
                (0..1, true),    // same line, hit that dirties
                (63..65, false), // spans the set-index wrap point
                (64..65, false), // single aliasing line: dirty eviction
            ],
        );
    }

    #[test]
    fn invalidate_is_silent_drop() {
        let mut c = Cache::with_capture(4096);
        c.access(4, true);
        c.put_line(4, &[9u8; 64]);
        c.invalidate(4);
        assert!(!c.contains(4));
        assert!(c.line(4).is_none());
        assert_eq!(c.stats().flushes, 0);
    }
}
