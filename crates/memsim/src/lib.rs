//! # memsim — simulated memory substrate
//!
//! The hardware the paper runs on, reproduced as calibrated models:
//!
//! - [`calib`] — every latency/bandwidth constant, keyed to the paper's
//!   Tables 1–2 and platform description (§4.1).
//! - [`region::Region`] — byte-addressable backing stores that really
//!   hold the bytes (volatile DRAM vs crash-persistent CXL box).
//! - [`cache::Cache`] — a write-back CPU cache with 64-B lines; in
//!   capture mode coherency violations are *observable*, which is how the
//!   §3.3 protocol is tested.
//! - [`cxl::CxlPool`] — the CXL-switch memory pool: cached and uncached
//!   (non-temporal) access paths, `clflush`, per-host x16 links, switch
//!   fabric, NUMA, and crash semantics (cache dies, box survives).
//! - [`rdma::RdmaPool`] — the RDMA baseline: DMA-style bulk transfers
//!   with fixed protocol latency, per-op NIC serialization and a 12 GB/s
//!   cap.
//! - [`dram::DramSpace`] — host-local DRAM behind the same cache model.

#![warn(missing_docs)]

mod proptests;

pub mod cache;
pub mod calib;
pub mod cxl;
pub mod dram;
pub mod rdma;
pub mod region;
pub mod shard;

use simkit::SimTime;

/// Identifies an attached compute node (a database instance or a
/// multi-primary node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Result of a timed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Virtual time at which the access completes.
    pub end: SimTime,
    /// Bytes that crossed the interconnect (cache misses, writebacks,
    /// DMA transfers). Zero for pure cache hits and local DRAM.
    pub link_bytes: u64,
    /// Cache lines served from the CPU cache.
    pub hits: u64,
    /// Cache lines that missed (or, for uncached paths, lines moved).
    pub misses: u64,
}

impl Access {
    /// A free access completing instantly at `now` (used for zero-length
    /// operations).
    pub fn free(now: SimTime) -> Self {
        Access {
            end: now,
            link_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Latency of this access relative to its start time.
    pub fn latency_since(&self, start: SimTime) -> u64 {
        self.end.saturating_since(start)
    }
}

pub use cache::{Cache, CacheStats};
pub use cxl::{CxlFabric, CxlNodeConfig, CxlPool, CxlShard};
pub use dram::DramSpace;
pub use rdma::{RdmaError, RdmaFabric, RdmaPool, RdmaShard};
pub use region::Region;
pub use shard::{RegionReader, WriteLog};
