//! Host-local DRAM.
//!
//! [`DramSpace`] models the local DRAM an instance uses for its buffer
//! pool (DRAM-BP baseline) or local tier (tiered RDMA baseline). Accesses
//! go through the same CPU cache model as CXL so the comparison between
//! DRAM-BP and CXL-BP (Figure 3) is apples-to-apples: both enjoy cache
//! hits; they differ in miss latency (146 ns vs 549 ns + stream) and in
//! that DRAM bandwidth is effectively unconstrained at these scales.

use crate::cache::Cache;
use crate::calib::{
    CACHE_HIT_NS, CACHE_LINE, DRAM_LOCAL_NS, DRAM_REMOTE_NS, DRAM_STREAM_NS_PER_LINE,
};
use crate::region::Region;
use crate::Access;
use simkit::trace::{self, Lane};
use simkit::SimTime;

/// Attribution leaf for a DRAM access: cache-hit time is separated out so
/// the `cache_hit` lane is comparable across DRAM and CXL designs; the
/// rest (miss base + streaming) is `dram`. By `access_cost`'s formula
/// `hits * CACHE_HIT_NS <= latency`, so the split is exact.
#[inline]
fn note_dram(latency: u64, hits: u64) {
    if trace::active() {
        let cache = hits * CACHE_HIT_NS;
        trace::attr_add(Lane::CacheHit, cache);
        trace::attr_add(Lane::Dram, latency - cache);
    }
}

/// A node-private DRAM space with a CPU cache in front.
#[derive(Debug)]
pub struct DramSpace {
    region: Region,
    cache: Cache,
    remote_numa: bool,
    bytes_read: u64,
    bytes_written: u64,
}

impl DramSpace {
    /// Create `size` bytes of local DRAM fronted by a cache of
    /// `cache_bytes`.
    pub fn new(size: usize, cache_bytes: usize, remote_numa: bool) -> Self {
        DramSpace {
            region: Region::volatile(size.next_multiple_of(CACHE_LINE as usize)),
            cache: Cache::new(cache_bytes),
            remote_numa,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.region.len()
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// Raw region (no timing) — test and bulk-load use.
    pub fn raw(&self) -> &Region {
        &self.region
    }

    /// Raw mutable region (no timing).
    pub fn raw_mut(&mut self) -> &mut Region {
        &mut self.region
    }

    /// Total bytes read / written through the timed interface.
    pub fn traffic(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }

    fn base_ns(&self) -> u64 {
        if self.remote_numa {
            DRAM_REMOTE_NS
        } else {
            DRAM_LOCAL_NS
        }
    }

    fn access_cost(&mut self, off: u64, len: usize, write: bool) -> (u64, u64, u64) {
        // DRAM caches are always timing-mode, so the whole access is one
        // batched tag sweep; `Cache::access_run` counts hits/misses (and
        // stats) identically to per-line `Cache::access` calls.
        let run = self.cache.access_run(
            off / CACHE_LINE..(off + len as u64).div_ceil(CACHE_LINE),
            write,
        );
        let (hits, misses) = (run.hits, run.misses);
        let latency = if misses == 0 {
            hits * CACHE_HIT_NS
        } else {
            self.base_ns() + (misses - 1) * DRAM_STREAM_NS_PER_LINE + hits * CACHE_HIT_NS
        };
        (latency, hits, misses)
    }

    /// Timed read.
    pub fn read(&mut self, off: u64, buf: &mut [u8], now: SimTime) -> Access {
        let (latency, hits, misses) = self.access_cost(off, buf.len(), false);
        note_dram(latency, hits);
        self.region.read(off, buf);
        self.bytes_read += buf.len() as u64;
        Access {
            end: now + latency,
            link_bytes: 0,
            hits,
            misses,
        }
    }

    /// Timed write.
    pub fn write(&mut self, off: u64, data: &[u8], now: SimTime) -> Access {
        let (latency, hits, misses) = self.access_cost(off, data.len(), true);
        note_dram(latency, hits);
        self.region.write(off, data);
        self.bytes_written += data.len() as u64;
        Access {
            end: now + latency,
            link_bytes: 0,
            hits,
            misses,
        }
    }

    /// Crash: local DRAM contents are lost.
    pub fn crash(&mut self) {
        self.region.crash();
        self.cache.crash();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_traffic() {
        let mut d = DramSpace::new(4096, 1024, false);
        d.write(0, &[5; 100], SimTime::ZERO);
        let mut buf = [0u8; 100];
        d.read(0, &mut buf, SimTime::ZERO);
        assert_eq!(buf, [5; 100]);
        assert_eq!(d.traffic(), (100, 100));
    }

    #[test]
    fn dram_miss_is_much_cheaper_than_cxl_miss() {
        let mut d = DramSpace::new(4096, 64, false);
        let mut buf = [0u8; 64];
        let a = d.read(0, &mut buf, SimTime::ZERO);
        let dram_ns = a.end.as_nanos();
        assert!(dram_ns < crate::calib::CXL_SWITCH_LOCAL_NS, "{dram_ns}");
    }

    #[test]
    fn remote_numa_slower() {
        let mut local = DramSpace::new(4096, 64, false);
        let mut remote = DramSpace::new(4096, 64, true);
        let mut buf = [0u8; 64];
        let a = local.read(0, &mut buf, SimTime::ZERO);
        let b = remote.read(0, &mut buf, SimTime::ZERO);
        assert!(b.end > a.end);
    }

    #[test]
    fn crash_wipes_contents() {
        let mut d = DramSpace::new(128, 128, false);
        d.write(0, &[1; 64], SimTime::ZERO);
        d.crash();
        assert_eq!(d.raw().slice(0, 1), &[0xDE]);
    }
}
