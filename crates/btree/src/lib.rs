//! # btree — a B+tree over the buffer pool abstraction
//!
//! The index structure the paper's workloads exercise: fixed-size-record
//! B+tree with leaf chaining, built *entirely* on [`bufferpool::BufferPool`]
//! byte-range reads/writes — so the same tree code runs over local DRAM,
//! the tiered RDMA pool, or PolarCXLMem, and every structural change is
//! redo-logged through a mini-transaction ([`mtr::Mtr`]) with two-phase
//! page latching (the SMO discipline §3.2's recovery relies on).

#![warn(missing_docs)]

pub mod mtr;
pub mod page;
pub mod tree;

pub use mtr::Mtr;
pub use tree::BTree;

#[cfg(test)]
mod tests {
    use crate::BTree;
    use bufferpool::dram_bp::DramBp;
    use bufferpool::BufferPool;
    use simkit::rng::SimRng;
    use simkit::SimTime;
    use storage::{PageStore, Wal};

    const REC: u16 = 56; // small records force deep trees quickly

    fn pool(pages: u64) -> DramBp {
        let store = PageStore::with_page_size(pages, 512);
        DramBp::new(pages as usize, 1 << 20, store)
    }

    fn rec(tag: u8) -> Vec<u8> {
        vec![tag; REC as usize]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut bp = pool(64);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        for k in [5u64, 1, 9, 3, 7] {
            let (ok, _) = t.insert(&mut bp, &mut wal, k, &rec(k as u8), SimTime::ZERO);
            assert!(ok);
        }
        for k in [1u64, 3, 5, 7, 9] {
            let (got, _) = t.get(&mut bp, k, SimTime::ZERO);
            assert_eq!(got.unwrap(), rec(k as u8), "key {k}");
        }
        let (missing, _) = t.get(&mut bp, 4, SimTime::ZERO);
        assert!(missing.is_none());
        assert_eq!(t.check_invariants(&mut bp), 5);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut bp = pool(64);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        assert!(t.insert(&mut bp, &mut wal, 7, &rec(1), SimTime::ZERO).0);
        assert!(!t.insert(&mut bp, &mut wal, 7, &rec(2), SimTime::ZERO).0);
        let (got, _) = t.get(&mut bp, 7, SimTime::ZERO);
        assert_eq!(got.unwrap(), rec(1), "original value preserved");
    }

    #[test]
    fn splits_grow_the_tree() {
        let mut bp = pool(256);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        // 512-byte pages with 64-byte slots: capacity 7; 100 keys forces
        // multiple levels.
        for k in 0..100u64 {
            t.insert(&mut bp, &mut wal, k, &rec(k as u8), SimTime::ZERO);
        }
        assert!(t.height() >= 2, "height {}", t.height());
        assert_eq!(t.check_invariants(&mut bp), 100);
        for k in 0..100u64 {
            let (got, _) = t.get(&mut bp, k, SimTime::ZERO);
            assert_eq!(got.unwrap(), rec(k as u8), "key {k}");
        }
    }

    #[test]
    fn descending_inserts_split_correctly() {
        let mut bp = pool(256);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        for k in (0..100u64).rev() {
            t.insert(&mut bp, &mut wal, k, &rec(k as u8), SimTime::ZERO);
        }
        assert_eq!(t.check_invariants(&mut bp), 100);
    }

    #[test]
    fn scan_follows_leaf_chain() {
        let mut bp = pool(256);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        for k in (0..100u64).step_by(2) {
            t.insert(&mut bp, &mut wal, k, &rec(k as u8), SimTime::ZERO);
        }
        let (rows, _) = t.scan(&mut bp, 11, 10, SimTime::ZERO);
        let keys: Vec<u64> = rows.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![12, 14, 16, 18, 20, 22, 24, 26, 28, 30]);
        for (k, v) in rows {
            assert_eq!(v, rec(k as u8));
        }
        // Scan past the end stops gracefully.
        let (tail, _) = t.scan(&mut bp, 95, 10, SimTime::ZERO);
        assert_eq!(tail.len(), 2); // 96, 98
    }

    #[test]
    fn update_field_changes_only_that_field() {
        let mut bp = pool(64);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        t.insert(&mut bp, &mut wal, 42, &rec(7), SimTime::ZERO);
        let (found, _) = t.update_field(&mut bp, &mut wal, 42, 10, &[0xFF; 4], SimTime::ZERO);
        assert!(found);
        let (got, _) = t.get(&mut bp, 42, SimTime::ZERO);
        let got = got.unwrap();
        assert_eq!(&got[0..10], &rec(7)[0..10]);
        assert_eq!(&got[10..14], &[0xFF; 4]);
        assert_eq!(&got[14..], &rec(7)[14..]);
        // Missing key reports not-found.
        let (found, _) = t.update_field(&mut bp, &mut wal, 999, 0, &[1], SimTime::ZERO);
        assert!(!found);
    }

    #[test]
    fn delete_removes_and_preserves_order() {
        let mut bp = pool(256);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        for k in 0..50u64 {
            t.insert(&mut bp, &mut wal, k, &rec(k as u8), SimTime::ZERO);
        }
        for k in (0..50u64).step_by(3) {
            let (found, _) = t.delete(&mut bp, &mut wal, k, SimTime::ZERO);
            assert!(found);
        }
        assert_eq!(t.check_invariants(&mut bp), 50 - 17);
        for k in 0..50u64 {
            let (got, _) = t.get(&mut bp, k, SimTime::ZERO);
            assert_eq!(got.is_some(), k % 3 != 0, "key {k}");
        }
        // Deleting a missing key is a no-op.
        let (found, _) = t.delete(&mut bp, &mut wal, 0, SimTime::ZERO);
        assert!(!found);
    }

    #[test]
    fn mass_deletes_merge_leaves_and_shrink_the_tree() {
        let mut bp = pool(512);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        for k in 0..200u64 {
            t.insert(&mut bp, &mut wal, k, &rec(k as u8), SimTime::ZERO);
        }
        let grown_height = t.height();
        assert!(grown_height >= 2);
        // Drain the tree completely: merges must cascade and the root
        // must collapse back to a single (empty) leaf.
        for k in 0..200u64 {
            let (found, _) = t.delete(&mut bp, &mut wal, k, SimTime::ZERO);
            assert!(found, "key {k}");
        }
        assert_eq!(t.check_invariants(&mut bp), 0);
        assert_eq!(t.height(), 0, "full drain must collapse the root");
        let (rows, _) = t.scan(&mut bp, 0, 10, SimTime::ZERO);
        assert!(rows.is_empty());
        // And the tree still accepts inserts after the collapse.
        for k in 300..360u64 {
            assert!(t.insert(&mut bp, &mut wal, k, &rec(3), SimTime::ZERO).0);
        }
        assert_eq!(t.check_invariants(&mut bp), 60);
    }

    #[test]
    fn merges_are_redo_logged_like_splits() {
        let mut bp = pool(512);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        for k in 0..60u64 {
            t.insert(&mut bp, &mut wal, k, &rec(k as u8), SimTime::ZERO);
        }
        for k in 10..60u64 {
            t.delete(&mut bp, &mut wal, k, SimTime::ZERO);
        }
        wal.flush(SimTime::ZERO);
        // Replay over pristine storage reproduces the post-merge tree.
        let mut fresh = pool(512);
        for _ in 0..bp.store().allocated_pages() {
            fresh.store_mut().allocate();
        }
        for r in wal.replay_from(storage::Lsn::ZERO) {
            fresh.write(r.page, r.off, &r.data, r.lsn, SimTime::ZERO);
        }
        let (t2, _) = BTree::open(&mut fresh, t.meta_page, SimTime::ZERO);
        assert_eq!(t2.height(), t.height());
        assert_eq!(t2.check_invariants(&mut fresh), 10);
    }

    #[test]
    fn reopen_after_close() {
        let mut bp = pool(256);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        for k in 0..60u64 {
            t.insert(&mut bp, &mut wal, k, &rec(k as u8), SimTime::ZERO);
        }
        let meta = t.meta_page;
        bp.flush_all(SimTime::ZERO);
        let (t2, _) = BTree::open(&mut bp, meta, SimTime::ZERO);
        assert_eq!(t2.root(), t.root());
        assert_eq!(t2.height(), t.height());
        let (got, _) = t2.get(&mut bp, 33, SimTime::ZERO);
        assert_eq!(got.unwrap(), rec(33));
    }

    #[test]
    fn every_structural_write_is_redo_logged() {
        let mut bp = pool(256);
        let mut wal = Wal::new();
        let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
        for k in 0..30u64 {
            t.insert(&mut bp, &mut wal, k, &rec(k as u8), SimTime::ZERO);
        }
        wal.flush(SimTime::ZERO);
        // Replaying the full log over pristine storage must reproduce
        // the tree (physical redo is idempotent and complete).
        let mut fresh = pool(256);
        for _ in 0..bp.store().allocated_pages() {
            fresh.store_mut().allocate();
        }
        for r in wal.replay_from(storage::Lsn::ZERO) {
            fresh.write(r.page, r.off, &r.data, r.lsn, SimTime::ZERO);
        }
        let (t2, _) = BTree::open(&mut fresh, t.meta_page, SimTime::ZERO);
        assert_eq!(t2.check_invariants(&mut fresh), 30);
        for k in 0..30u64 {
            let (got, _) = t2.get(&mut fresh, k, SimTime::ZERO);
            assert_eq!(got.unwrap(), rec(k as u8), "key {k}");
        }
    }

    /// The tree agrees with a BTreeMap model under seeded random
    /// workloads (32 independent cases).
    #[test]
    fn matches_btreemap_model() {
        for case in 0..32u64 {
            let mut rng = SimRng::seed_from_u64(0xB7EE_0000 + case);
            let n_ops = rng.gen_range(1usize..300);
            let mut bp = pool(2048);
            let mut wal = Wal::new();
            let (mut t, _) = BTree::create(&mut bp, &mut wal, REC, SimTime::ZERO);
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..n_ops {
                let op = rng.gen_range(0u8..4);
                let key = rng.gen_range(0u64..500);
                match op {
                    0 | 1 => {
                        let v = rec((key % 251) as u8);
                        let (ins, _) = t.insert(&mut bp, &mut wal, key, &v, SimTime::ZERO);
                        let model_ins = !model.contains_key(&key);
                        assert_eq!(ins, model_ins, "case {case}");
                        if model_ins {
                            model.insert(key, v);
                        }
                    }
                    2 => {
                        let (del, _) = t.delete(&mut bp, &mut wal, key, SimTime::ZERO);
                        assert_eq!(del, model.remove(&key).is_some(), "case {case}");
                    }
                    _ => {
                        let (got, _) = t.get(&mut bp, key, SimTime::ZERO);
                        assert_eq!(got.as_ref(), model.get(&key), "case {case}");
                    }
                }
            }
            assert_eq!(
                t.check_invariants(&mut bp),
                model.len() as u64,
                "case {case}"
            );
            // Full scan equals model iteration.
            let (rows, _) = t.scan(&mut bp, 0, usize::MAX, SimTime::ZERO);
            let scan_keys: Vec<u64> = rows.iter().map(|(k, _)| *k).collect();
            let model_keys: Vec<u64> = model.keys().copied().collect();
            assert_eq!(scan_keys, model_keys, "case {case}");
        }
    }
}
