//! On-page layouts of B+tree nodes.
//!
//! Leaf pages use the production slotted-page design (as in InnoDB):
//! records live in an **unordered heap** growing down from the page end,
//! and a **sorted slot array** of 2-byte heap indices grows up after the
//! header. Inserting shifts only slot-array bytes (2 B per entry), not
//! records — which keeps physical redo records small and realistic.
//! Deleted heap slots are chained into an in-page free list and reused.
//!
//! ```text
//! | header 16 B | slot array: nkeys × u16 →      ...      ← heap: slots of (key u64 + record) |
//! ```
//!
//! Inner nodes keep a simple sorted (key, child) array: an inner node
//! with `n` keys has `n+1` children; `child0` covers keys below
//! `key[0]`, entry `i`'s child covers `[key[i], key[i+1])`.

/// Byte size of the node header.
pub const HEADER: u16 = 16;

/// Node type tag: leaf.
pub const TYPE_LEAF: u8 = 0;
/// Node type tag: inner.
pub const TYPE_INNER: u8 = 1;

/// Offset of the node type byte.
pub const OFF_TYPE: u16 = 0;
/// Offset of the level byte (0 = leaf).
pub const OFF_LEVEL: u16 = 1;
/// Offset of the key count.
pub const OFF_NKEYS: u16 = 2;
/// Offset of the next-leaf pointer (leaf chain for range scans).
pub const OFF_NEXT_LEAF: u16 = 4;
/// Offset of the heap-slots-allocated count (leaf only).
pub const OFF_HEAP_USED: u16 = 12;
/// Offset of the heap free-list head (1-based heap index; 0 = empty).
pub const OFF_FREE_HEAD: u16 = 14;
/// Offset of inner node's leftmost child pointer.
pub const OFF_CHILD0: u16 = HEADER;

/// Leaf geometry for a given record size and page size.
#[derive(Debug, Clone, Copy)]
pub struct LeafGeo {
    /// Bytes per record (excluding the 8-byte key).
    pub record_size: u16,
    /// Max entries per leaf.
    pub capacity: u16,
    /// Page size.
    pub page_size: u64,
}

impl LeafGeo {
    /// Compute leaf geometry: header + slot array (2 B/entry) + heap
    /// slots (8 + record bytes each) must fit the page.
    pub fn new(page_size: u64, record_size: u16) -> Self {
        let per_entry = 2 + 8 + record_size as u64;
        let capacity = ((page_size - HEADER as u64) / per_entry) as u16;
        assert!(capacity >= 4, "page too small for 4 records");
        LeafGeo {
            record_size,
            capacity,
            page_size,
        }
    }

    /// Byte offset of slot-array entry `i` (a u16 heap index).
    pub fn slot_off(&self, i: u16) -> u16 {
        HEADER + 2 * i
    }

    /// Bytes per heap slot (key + record).
    pub fn heap_slot(&self) -> u16 {
        8 + self.record_size
    }

    /// Byte offset of heap slot `h`'s key (heap grows down from the
    /// page end).
    pub fn heap_off(&self, h: u16) -> u16 {
        (self.page_size - (h as u64 + 1) * self.heap_slot() as u64) as u16
    }

    /// Byte offset of heap slot `h`'s record.
    pub fn heap_rec_off(&self, h: u16) -> u16 {
        self.heap_off(h) + 8
    }
}

/// Inner-node geometry for a given page size.
#[derive(Debug, Clone, Copy)]
pub struct InnerGeo {
    /// Max keys per inner node (children = keys + 1).
    pub capacity: u16,
}

impl InnerGeo {
    /// Compute inner geometry.
    pub fn new(page_size: u64) -> Self {
        // header + child0 + capacity * (key + child)
        let capacity = ((page_size - HEADER as u64 - 8) / 16) as u16;
        assert!(capacity >= 4, "page too small for 4 separators");
        InnerGeo { capacity }
    }

    /// Byte offset of inner entry `i`'s key.
    pub fn key_off(&self, i: u16) -> u16 {
        OFF_CHILD0 + 8 + i * 16
    }

    /// Byte offset of inner entry `i`'s child pointer.
    pub fn child_off(&self, i: u16) -> u16 {
        self.key_off(i) + 8
    }
}

/// Tree metadata page layout (page 0 of a tree's store):
/// `magic u64 | root u64 | record_size u64 | height u64`.
pub mod meta {
    /// Magic marking a formatted tree.
    pub const MAGIC: u64 = 0x706F_6C61_7254_7265; // "polarTre"
    /// Offset of the magic.
    pub const OFF_MAGIC: u16 = 0;
    /// Offset of the root page id.
    pub const OFF_ROOT: u16 = 8;
    /// Offset of the record size.
    pub const OFF_RECSIZE: u16 = 16;
    /// Offset of the tree height (levels above leaf).
    pub const OFF_HEIGHT: u16 = 24;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_geometry_fits_page() {
        let g = LeafGeo::new(16 * 1024, 188);
        // (16384-16)/(2+8+188) = 82 entries
        assert_eq!(g.capacity, 82);
        // Slot array top and heap bottom must not collide.
        let slots_end = g.slot_off(g.capacity) as u64;
        let heap_start = g.heap_off(g.capacity - 1) as u64;
        assert!(slots_end <= heap_start);
    }

    #[test]
    fn heap_slots_are_disjoint_and_descending() {
        let g = LeafGeo::new(1024, 56);
        for h in 1..g.capacity {
            assert_eq!(
                g.heap_off(h) + g.heap_slot(),
                g.heap_off(h - 1),
                "heap slot {h} adjacency"
            );
        }
        assert_eq!(g.heap_off(0) as u64 + g.heap_slot() as u64, 1024);
        assert_eq!(g.heap_rec_off(0), g.heap_off(0) + 8);
    }

    #[test]
    fn inner_geometry_fits_page() {
        let g = InnerGeo::new(16 * 1024);
        assert_eq!(g.capacity, 1022);
        let last_end = g.child_off(g.capacity - 1) as u64 + 8;
        assert!(last_end <= 16 * 1024);
    }

    #[test]
    fn offsets_do_not_overlap_header() {
        let g = LeafGeo::new(1024, 56);
        assert_eq!(g.slot_off(0), HEADER);
        assert_eq!(g.slot_off(1), HEADER + 2);
        let ig = InnerGeo::new(1024);
        assert_eq!(ig.key_off(0), HEADER + 8);
        assert_eq!(ig.child_off(0), HEADER + 16);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_pages_rejected() {
        LeafGeo::new(64, 200);
    }
}
