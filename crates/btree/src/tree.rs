//! The B+tree over a [`BufferPool`].
//!
//! Fixed-size records keyed by `u64`, slotted leaves (heap + sorted slot
//! directory, so steady-state redo stays small — see [`crate::page`]),
//! leaf chaining for range scans, and crash-atomic page splits under
//! mini-transactions ([`crate::mtr::Mtr`]). Every structural write is
//! physical redo (absolute byte images), so replay is idempotent and any
//! recovery scheme can rebuild any page from storage + log.
//!
//! Deletes recycle heap cells in-page; underfull leaves merge with a
//! chain-adjacent sibling under the same parent, cascading through
//! single-child inner nodes and collapsing the root — so both SMO kinds
//! the paper names (splits *and* merges) run under mini-transactions.

use crate::mtr::Mtr;
use crate::page::{
    meta, InnerGeo, LeafGeo, HEADER, OFF_CHILD0, OFF_FREE_HEAD, OFF_HEAP_USED, OFF_LEVEL,
    OFF_NEXT_LEAF, OFF_NKEYS, OFF_TYPE, TYPE_INNER, TYPE_LEAF,
};
use bufferpool::BufferPool;
use simkit::SimTime;
use storage::{PageId, Wal};

/// Uniform timed-read access used by both the read-only cursor and the
/// mini-transaction.
pub trait PageReader {
    /// Read a little-endian u64 at `off` within `page`.
    fn ru64(&mut self, page: PageId, off: u16) -> u64;
    /// Read a little-endian u16 at `off` within `page`.
    fn ru16(&mut self, page: PageId, off: u16) -> u16;
    /// Read raw bytes.
    fn rbytes(&mut self, page: PageId, off: u16, buf: &mut [u8]);
}

/// A timed read-only cursor.
struct Cursor<'a, P: BufferPool> {
    pool: &'a mut P,
    now: SimTime,
}

impl<P: BufferPool> PageReader for Cursor<'_, P> {
    fn ru64(&mut self, page: PageId, off: u16) -> u64 {
        let mut b = [0u8; 8];
        self.rbytes(page, off, &mut b);
        u64::from_le_bytes(b)
    }
    fn ru16(&mut self, page: PageId, off: u16) -> u16 {
        let mut b = [0u8; 2];
        self.rbytes(page, off, &mut b);
        u16::from_le_bytes(b)
    }
    fn rbytes(&mut self, page: PageId, off: u16, buf: &mut [u8]) {
        self.now = self.pool.read(page, off, buf, self.now).end;
    }
}

impl<P: BufferPool> PageReader for Mtr<'_, P> {
    fn ru64(&mut self, page: PageId, off: u16) -> u64 {
        self.read_u64(page, off)
    }
    fn ru16(&mut self, page: PageId, off: u16) -> u16 {
        self.read_u16(page, off)
    }
    fn rbytes(&mut self, page: PageId, off: u16, buf: &mut [u8]) {
        self.read(page, off, buf);
    }
}

/// A B+tree handle. Cheap to copy; all state lives in pages.
///
/// ```
/// use btree::BTree;
/// use bufferpool::dram_bp::DramBp;
/// use storage::{PageStore, Wal};
/// use simkit::SimTime;
///
/// let mut pool = DramBp::new(64, 1 << 20, PageStore::with_page_size(64, 2048));
/// let mut wal = Wal::new();
/// let (mut tree, _) = BTree::create(&mut pool, &mut wal, 120, SimTime::ZERO);
/// tree.insert(&mut pool, &mut wal, 42, &[7u8; 120], SimTime::ZERO);
/// let (row, _) = tree.get(&mut pool, 42, SimTime::ZERO);
/// assert_eq!(row.unwrap(), vec![7u8; 120]);
/// let (rows, _) = tree.scan(&mut pool, 0, 10, SimTime::ZERO);
/// assert_eq!(rows.len(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    /// The metadata page (root pointer, geometry).
    pub meta_page: PageId,
    root: PageId,
    /// Levels above the leaves (0 = root is a leaf).
    height: u8,
    leaf: LeafGeo,
    inner: InnerGeo,
}

impl BTree {
    /// Record size this tree stores.
    pub fn record_size(&self) -> u16 {
        self.leaf.record_size
    }

    /// Current root page.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Current height (levels above leaves).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Leaf capacity in entries (exposed for sizing heuristics).
    pub fn leaf_capacity(&self) -> u16 {
        self.leaf.capacity
    }

    fn init_leaf<P: BufferPool>(mtr: &mut Mtr<'_, P>, page: PageId, next_leaf: u64) {
        mtr.write(page, OFF_TYPE, &[TYPE_LEAF]);
        mtr.write(page, OFF_LEVEL, &[0]);
        mtr.write_u16(page, OFF_NKEYS, 0);
        mtr.write_u64(page, OFF_NEXT_LEAF, next_leaf);
        mtr.write_u16(page, OFF_HEAP_USED, 0);
        mtr.write_u16(page, OFF_FREE_HEAD, 0);
    }

    /// Create a fresh tree storing `record_size`-byte records.
    pub fn create<P: BufferPool>(
        pool: &mut P,
        wal: &mut Wal,
        record_size: u16,
        now: SimTime,
    ) -> (Self, SimTime) {
        let page_size = pool.page_size();
        let leaf = LeafGeo::new(page_size, record_size);
        let inner = InnerGeo::new(page_size);
        let mut mtr = Mtr::begin(pool, wal, now);
        let meta_page = mtr.allocate_page();
        let root = mtr.allocate_page();
        Self::init_leaf(&mut mtr, root, 0);
        mtr.write_u64(meta_page, meta::OFF_MAGIC, meta::MAGIC);
        mtr.write_u64(meta_page, meta::OFF_ROOT, root.0);
        mtr.write_u64(meta_page, meta::OFF_RECSIZE, record_size as u64);
        mtr.write_u64(meta_page, meta::OFF_HEIGHT, 0);
        let t = mtr.commit();
        (
            BTree {
                meta_page,
                root,
                height: 0,
                leaf,
                inner,
            },
            t,
        )
    }

    /// Reopen a tree from its metadata page (e.g. after recovery).
    pub fn open<P: BufferPool>(pool: &mut P, meta_page: PageId, now: SimTime) -> (Self, SimTime) {
        let mut cur = Cursor { pool, now };
        let magic = cur.ru64(meta_page, meta::OFF_MAGIC);
        assert_eq!(magic, meta::MAGIC, "not a B+tree meta page");
        let root = PageId(cur.ru64(meta_page, meta::OFF_ROOT));
        let record_size = cur.ru64(meta_page, meta::OFF_RECSIZE) as u16;
        let height = cur.ru64(meta_page, meta::OFF_HEIGHT) as u8;
        let page_size = cur.pool.page_size();
        let t = cur.now;
        (
            BTree {
                meta_page,
                root,
                height,
                leaf: LeafGeo::new(page_size, record_size),
                inner: InnerGeo::new(page_size),
            },
            t,
        )
    }

    // ------------------------------------------------------ descent

    /// Upper-bound search in an inner node: index of the child to follow.
    fn inner_child_idx<R: PageReader>(&self, r: &mut R, nkeys: u16, page: PageId, key: u64) -> u16 {
        let (mut lo, mut hi) = (0u16, nkeys);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if r.ru64(page, self.inner.key_off(mid)) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn descend<R: PageReader>(
        &self,
        r: &mut R,
        key: u64,
        path: Option<&mut Vec<(PageId, u16)>>,
    ) -> PageId {
        let mut page = self.root;
        let mut path = path;
        for _ in 0..self.height {
            let nkeys = r.ru16(page, OFF_NKEYS);
            let idx = self.inner_child_idx(r, nkeys, page, key);
            let child = if idx == 0 {
                r.ru64(page, OFF_CHILD0)
            } else {
                r.ru64(page, self.inner.child_off(idx - 1))
            };
            if let Some(p) = path.as_deref_mut() {
                p.push((page, idx));
            }
            page = PageId(child);
        }
        page
    }

    /// Binary search in a leaf: `Ok((pos, heap))` when entry `pos` holds
    /// `key` in heap cell `heap`; `Err(pos)` for the insertion point.
    fn leaf_search<R: PageReader>(
        &self,
        r: &mut R,
        nkeys: u16,
        page: PageId,
        key: u64,
    ) -> Result<(u16, u16), u16> {
        let (mut lo, mut hi) = (0u16, nkeys);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let h = r.ru16(page, self.leaf.slot_off(mid));
            let k = r.ru64(page, self.leaf.heap_off(h));
            match k.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok((mid, h)),
            }
        }
        Err(lo)
    }

    // ------------------------------------------------------ reads

    /// Point lookup: the full record for `key`.
    pub fn get<P: BufferPool>(
        &self,
        pool: &mut P,
        key: u64,
        now: SimTime,
    ) -> (Option<Vec<u8>>, SimTime) {
        let mut cur = Cursor { pool, now };
        let leaf = self.descend(&mut cur, key, None);
        let nkeys = cur.ru16(leaf, OFF_NKEYS);
        match self.leaf_search(&mut cur, nkeys, leaf, key) {
            Ok((_, h)) => {
                let mut rec = vec![0u8; self.leaf.record_size as usize];
                cur.rbytes(leaf, self.leaf.heap_rec_off(h), &mut rec);
                (Some(rec), cur.now)
            }
            Err(_) => (None, cur.now),
        }
    }

    /// Read only `buf.len()` bytes at `field_off` within the record —
    /// the fine-grained access CXL makes cheap.
    pub fn get_field<P: BufferPool>(
        &self,
        pool: &mut P,
        key: u64,
        field_off: u16,
        buf: &mut [u8],
        now: SimTime,
    ) -> (bool, SimTime) {
        let mut cur = Cursor { pool, now };
        let leaf = self.descend(&mut cur, key, None);
        let nkeys = cur.ru16(leaf, OFF_NKEYS);
        match self.leaf_search(&mut cur, nkeys, leaf, key) {
            Ok((_, h)) => {
                cur.rbytes(leaf, self.leaf.heap_rec_off(h) + field_off, buf);
                (true, cur.now)
            }
            Err(_) => (false, cur.now),
        }
    }

    /// Range scan: up to `limit` records with key >= `start`, following
    /// the leaf chain.
    pub fn scan<P: BufferPool>(
        &self,
        pool: &mut P,
        start: u64,
        limit: usize,
        now: SimTime,
    ) -> (Vec<(u64, Vec<u8>)>, SimTime) {
        let mut cur = Cursor { pool, now };
        let mut leaf = self.descend(&mut cur, start, None);
        let mut out = Vec::with_capacity(limit.min(1024));
        let mut nkeys = cur.ru16(leaf, OFF_NKEYS);
        let mut i = match self.leaf_search(&mut cur, nkeys, leaf, start) {
            Ok((i, _)) => i,
            Err(i) => i,
        };
        while out.len() < limit {
            if i >= nkeys {
                let next = cur.ru64(leaf, OFF_NEXT_LEAF);
                if next == 0 {
                    break;
                }
                leaf = PageId(next);
                nkeys = cur.ru16(leaf, OFF_NKEYS);
                i = 0;
                continue;
            }
            let h = cur.ru16(leaf, self.leaf.slot_off(i));
            let key = cur.ru64(leaf, self.leaf.heap_off(h));
            let mut rec = vec![0u8; self.leaf.record_size as usize];
            cur.rbytes(leaf, self.leaf.heap_rec_off(h), &mut rec);
            out.push((key, rec));
            i += 1;
        }
        (out, cur.now)
    }

    // ------------------------------------------------------ writes

    /// Update `data.len()` bytes at `field_off` within `key`'s record.
    pub fn update_field<P: BufferPool>(
        &self,
        pool: &mut P,
        wal: &mut Wal,
        key: u64,
        field_off: u16,
        data: &[u8],
        now: SimTime,
    ) -> (bool, SimTime) {
        let mut mtr = Mtr::begin(pool, wal, now);
        let leaf = self.descend(&mut mtr, key, None);
        let nkeys = mtr.ru16(leaf, OFF_NKEYS);
        match self.leaf_search(&mut mtr, nkeys, leaf, key) {
            Ok((_, h)) => {
                mtr.write(leaf, self.leaf.heap_rec_off(h) + field_off, data);
                (true, mtr.commit())
            }
            Err(_) => (false, mtr.commit()),
        }
    }

    /// Allocate a heap cell in `leaf` (reuse the free list, else extend).
    fn leaf_alloc_heap<P: BufferPool>(&self, mtr: &mut Mtr<'_, P>, leaf: PageId) -> u16 {
        let free = mtr.ru16(leaf, OFF_FREE_HEAD);
        if free != 0 {
            let h = free - 1;
            let next = mtr.ru16(leaf, self.leaf.heap_off(h));
            mtr.write_u16(leaf, OFF_FREE_HEAD, next);
            h
        } else {
            let used = mtr.ru16(leaf, OFF_HEAP_USED);
            assert!(used < self.leaf.capacity, "heap exhausted below capacity");
            mtr.write_u16(leaf, OFF_HEAP_USED, used + 1);
            used
        }
    }

    /// Insert `(key, record)` into `leaf` at slot position `pos`
    /// (caller guarantees room).
    fn leaf_insert_at<P: BufferPool>(
        &self,
        mtr: &mut Mtr<'_, P>,
        leaf: PageId,
        pos: u16,
        nkeys: u16,
        key: u64,
        record: &[u8],
    ) {
        let h = self.leaf_alloc_heap(mtr, leaf);
        mtr.write_u64(leaf, self.leaf.heap_off(h), key);
        mtr.write(leaf, self.leaf.heap_rec_off(h), record);
        // Shift the slot directory (2 bytes per entry) right by one.
        if pos < nkeys {
            let move_len = 2 * (nkeys - pos) as usize;
            let mut buf = vec![0u8; move_len];
            mtr.rbytes(leaf, self.leaf.slot_off(pos), &mut buf);
            mtr.write(leaf, self.leaf.slot_off(pos + 1), &buf);
        }
        mtr.write_u16(leaf, self.leaf.slot_off(pos), h);
        mtr.write_u16(leaf, OFF_NKEYS, nkeys + 1);
    }

    /// Insert a record. Returns (inserted, time) — `false` when the key
    /// already exists. May split pages up to the root; all structural
    /// changes form one mini-transaction.
    pub fn insert<P: BufferPool>(
        &mut self,
        pool: &mut P,
        wal: &mut Wal,
        key: u64,
        record: &[u8],
        now: SimTime,
    ) -> (bool, SimTime) {
        assert_eq!(
            record.len(),
            self.leaf.record_size as usize,
            "record size mismatch"
        );
        let mut mtr = Mtr::begin(pool, wal, now);
        let mut path = Vec::with_capacity(self.height as usize);
        let mut leafp = self.descend(&mut mtr, key, Some(&mut path));
        let mut nkeys = mtr.ru16(leafp, OFF_NKEYS);
        if self.leaf_search(&mut mtr, nkeys, leafp, key).is_ok() {
            return (false, mtr.commit());
        }
        if nkeys >= self.leaf.capacity {
            let (sep, right) = self.split_leaf(&mut mtr, leafp);
            self.insert_into_parents(&mut mtr, path, sep, right);
            if key >= sep {
                leafp = right;
            }
            nkeys = mtr.ru16(leafp, OFF_NKEYS);
        }
        let pos = match self.leaf_search(&mut mtr, nkeys, leafp, key) {
            Ok(_) => unreachable!("duplicate appeared mid-mtr"),
            Err(p) => p,
        };
        self.leaf_insert_at(&mut mtr, leafp, pos, nkeys, key, record);
        (true, mtr.commit())
    }

    /// Delete `key`'s record. Returns (found, time). The heap cell is
    /// recycled in-page; when the leaf becomes underfull (< 1/4 full) it
    /// is merged with its right sibling under the same mini-transaction
    /// (the "merging" SMO of §3.2), shrinking the root when it empties.
    pub fn delete<P: BufferPool>(
        &mut self,
        pool: &mut P,
        wal: &mut Wal,
        key: u64,
        now: SimTime,
    ) -> (bool, SimTime) {
        let mut mtr = Mtr::begin(pool, wal, now);
        let mut path = Vec::with_capacity(self.height as usize);
        let leafp = self.descend(&mut mtr, key, Some(&mut path));
        let nkeys = mtr.ru16(leafp, OFF_NKEYS);
        let (pos, h) = match self.leaf_search(&mut mtr, nkeys, leafp, key) {
            Ok(ph) => ph,
            Err(_) => return (false, mtr.commit()),
        };
        // Shift the slot directory left over the removed entry.
        if pos + 1 < nkeys {
            let move_len = 2 * (nkeys - pos - 1) as usize;
            let mut buf = vec![0u8; move_len];
            mtr.rbytes(leafp, self.leaf.slot_off(pos + 1), &mut buf);
            mtr.write(leafp, self.leaf.slot_off(pos), &buf);
        }
        mtr.write_u16(leafp, OFF_NKEYS, nkeys - 1);
        // Chain the heap cell into the free list (husk stores the old
        // head in its key bytes).
        let old_free = mtr.ru16(leafp, OFF_FREE_HEAD);
        mtr.write_u16(leafp, self.leaf.heap_off(h), old_free);
        mtr.write_u16(leafp, OFF_FREE_HEAD, h + 1);
        // Merge SMO only when the leaf is nearly drained (< 1/4 full):
        // triggering near half-occupancy causes merge/split thrash under
        // delete+insert workloads (every sysbench write-tail would merge
        // ~80 entries and immediately re-split them).
        if nkeys - 1 < self.leaf.capacity / 4 {
            self.try_merge_leaf(&mut mtr, leafp, &path);
        }
        (true, mtr.commit())
    }

    /// Try to merge an underfull `leaf` (holding `remaining` entries)
    /// with its right sibling — or, when it is its parent's rightmost
    /// child, with its left sibling — provided both hang off the same
    /// parent and the result fits in one page. All page writes stay
    /// inside the caller's mtr, so the merge is crash-atomic like a
    /// split.
    fn try_merge_leaf<P: BufferPool>(
        &mut self,
        mtr: &mut Mtr<'_, P>,
        leaf: PageId,
        path: &[(PageId, u16)],
    ) {
        let Some(&(parent, j)) = path.last() else {
            return; // root leaf: nothing to merge with
        };
        let pn = mtr.ru16(parent, OFF_NKEYS);
        let child_at = |mtr: &mut Mtr<'_, P>, i: u16| {
            if i == 0 {
                PageId(mtr.ru64(parent, OFF_CHILD0))
            } else {
                PageId(mtr.ru64(parent, self.inner.child_off(i - 1)))
            }
        };
        // Prefer absorbing the right sibling; fall back to being
        // absorbed by the left one at the parent's right edge.
        let (left, right, sep_idx) = if j < pn {
            (leaf, child_at(mtr, j + 1), j)
        } else if j > 0 {
            (child_at(mtr, j - 1), leaf, j - 1)
        } else {
            return; // single child: the parent is handled when it empties
        };
        debug_assert_eq!(
            right.0,
            mtr.ru64(left, OFF_NEXT_LEAF),
            "merge partners must be chain-adjacent"
        );
        let ln = mtr.ru16(left, OFF_NKEYS);
        let rn = mtr.ru16(right, OFF_NKEYS);
        // Merge whenever the result fits; a merge to exactly full can
        // split again on the next insert, which production engines avoid
        // with hysteresis — acceptable here (splits are redo-safe too).
        if ln + rn > self.leaf.capacity {
            return;
        }
        // Append the right page's entries (all its keys are larger).
        let rec_size = self.leaf.record_size as usize;
        for i in 0..rn {
            let sh = mtr.ru16(right, self.leaf.slot_off(i));
            let k = mtr.ru64(right, self.leaf.heap_off(sh));
            let mut rec = vec![0u8; rec_size];
            mtr.rbytes(right, self.leaf.heap_rec_off(sh), &mut rec);
            self.leaf_insert_at(mtr, left, ln + i, ln + i, k, &rec);
        }
        // Unlink the right page from the leaf chain...
        let after = mtr.ru64(right, OFF_NEXT_LEAF);
        mtr.write_u64(left, OFF_NEXT_LEAF, after);
        // ...and remove its separator from the parent.
        if sep_idx + 1 < pn {
            let move_len = (pn - sep_idx - 1) as usize * 16;
            let mut buf = vec![0u8; move_len];
            mtr.rbytes(parent, self.inner.key_off(sep_idx + 1), &mut buf);
            mtr.write(parent, self.inner.key_off(sep_idx), &buf);
        }
        mtr.write_u16(parent, OFF_NKEYS, pn - 1);
        if pn - 1 == 0 {
            self.handle_empty_inner(mtr, parent, &path[..path.len() - 1]);
        }
        // The emptied right page is abandoned (no on-storage free list;
        // production engines reclaim it via a background purge).
    }

    /// An inner node just lost its last separator (one child left).
    /// Collapse the root onto its only child, or merge the node with its
    /// right sibling and cascade upward.
    fn handle_empty_inner<P: BufferPool>(
        &mut self,
        mtr: &mut Mtr<'_, P>,
        node: PageId,
        path: &[(PageId, u16)],
    ) {
        if node == self.root {
            // Collapse the root chain: the only child may itself be a
            // single-child inner node.
            while self.height > 0 && mtr.ru16(self.root, OFF_NKEYS) == 0 {
                let only = PageId(mtr.ru64(self.root, OFF_CHILD0));
                mtr.write_u64(self.meta_page, meta::OFF_ROOT, only.0);
                mtr.write_u64(self.meta_page, meta::OFF_HEIGHT, self.height as u64 - 1);
                self.root = only;
                self.height -= 1;
            }
            return;
        }
        let Some(&(gp, gj)) = path.last() else {
            return;
        };
        let gpn = mtr.ru16(gp, OFF_NKEYS);
        if gj >= gpn {
            return; // rightmost child: stays single-child (lazy)
        }
        let sib = PageId(mtr.ru64(gp, self.inner.child_off(gj)));
        let sn = mtr.ru16(sib, OFF_NKEYS);
        if 1 + sn > self.inner.capacity {
            return;
        }
        // Pull the separator down: it divides node's single child from
        // the sibling's subtree.
        let sep = mtr.ru64(gp, self.inner.key_off(gj));
        let sib_child0 = mtr.ru64(sib, OFF_CHILD0);
        mtr.write_u64(node, self.inner.key_off(0), sep);
        mtr.write_u64(node, self.inner.child_off(0), sib_child0);
        if sn > 0 {
            let mut buf = vec![0u8; sn as usize * 16];
            mtr.rbytes(sib, self.inner.key_off(0), &mut buf);
            mtr.write(node, self.inner.key_off(1), &buf);
        }
        mtr.write_u16(node, OFF_NKEYS, 1 + sn);
        // Remove the sibling's separator from the grandparent.
        if gj + 1 < gpn {
            let move_len = (gpn - gj - 1) as usize * 16;
            let mut buf = vec![0u8; move_len];
            mtr.rbytes(gp, self.inner.key_off(gj + 1), &mut buf);
            mtr.write(gp, self.inner.key_off(gj), &buf);
        }
        mtr.write_u16(gp, OFF_NKEYS, gpn - 1);
        if gpn - 1 == 0 {
            self.handle_empty_inner(mtr, gp, &path[..path.len() - 1]);
        }
    }

    // ------------------------------------------------------ SMOs

    /// Split `leaf`: move the upper half of its entries into a fresh
    /// right sibling. The left page keeps its heap; moved cells join its
    /// free list. Returns (separator key, right page).
    fn split_leaf<P: BufferPool>(&self, mtr: &mut Mtr<'_, P>, leaf: PageId) -> (u64, PageId) {
        let nkeys = mtr.ru16(leaf, OFF_NKEYS);
        let mid = nkeys / 2;
        let right = mtr.allocate_page();
        Self::init_leaf(mtr, right, 0);
        // Copy entries [mid..nkeys) into the right page compactly.
        let move_cnt = nkeys - mid;
        let mut sep = 0u64;
        let rec_size = self.leaf.record_size as usize;
        let mut slots = Vec::with_capacity(move_cnt as usize);
        for i in 0..move_cnt {
            let h = mtr.ru16(leaf, self.leaf.slot_off(mid + i));
            let key = mtr.ru64(leaf, self.leaf.heap_off(h));
            if i == 0 {
                sep = key;
            }
            let mut rec = vec![0u8; rec_size];
            mtr.rbytes(leaf, self.leaf.heap_rec_off(h), &mut rec);
            mtr.write_u64(right, self.leaf.heap_off(i), key);
            mtr.write(right, self.leaf.heap_rec_off(i), &rec);
            slots.push(i);
            // Recycle the left page's heap cell.
            let old_free = mtr.ru16(leaf, OFF_FREE_HEAD);
            mtr.write_u16(leaf, self.leaf.heap_off(h), old_free);
            mtr.write_u16(leaf, OFF_FREE_HEAD, h + 1);
        }
        let slot_bytes: Vec<u8> = slots.iter().flat_map(|s| s.to_le_bytes()).collect();
        mtr.write(right, self.leaf.slot_off(0), &slot_bytes);
        mtr.write_u16(right, OFF_NKEYS, move_cnt);
        mtr.write_u16(right, OFF_HEAP_USED, move_cnt);
        // Chain: left -> right -> old next.
        let old_next = mtr.ru64(leaf, OFF_NEXT_LEAF);
        mtr.write_u64(right, OFF_NEXT_LEAF, old_next);
        mtr.write_u64(leaf, OFF_NEXT_LEAF, right.0);
        mtr.write_u16(leaf, OFF_NKEYS, mid);
        (sep, right)
    }

    /// Split inner node `page`, returning (promoted key, right page).
    fn split_inner<P: BufferPool>(&self, mtr: &mut Mtr<'_, P>, page: PageId) -> (u64, PageId) {
        let nkeys = mtr.ru16(page, OFF_NKEYS);
        let mid = nkeys / 2; // key[mid] is promoted
        let right = mtr.allocate_page();
        let promoted = mtr.ru64(page, self.inner.key_off(mid));
        let right_child0 = mtr.ru64(page, self.inner.child_off(mid));
        let move_cnt = nkeys - mid - 1;
        let mut buf = vec![0u8; move_cnt as usize * 16];
        if move_cnt > 0 {
            mtr.rbytes(page, self.inner.key_off(mid + 1), &mut buf);
        }
        mtr.write(right, OFF_TYPE, &[TYPE_INNER]);
        let mut lvl = [0u8; 1];
        mtr.rbytes(page, OFF_LEVEL, &mut lvl);
        mtr.write(right, OFF_LEVEL, &lvl);
        mtr.write_u16(right, OFF_NKEYS, move_cnt);
        mtr.write_u64(right, OFF_CHILD0, right_child0);
        if move_cnt > 0 {
            mtr.write(right, self.inner.key_off(0), &buf);
        }
        mtr.write_u16(page, OFF_NKEYS, mid);
        (promoted, right)
    }

    /// Propagate a split (sep, right) into the ancestors recorded in
    /// `path` (deepest last), splitting them as needed and growing the
    /// root when the path is exhausted.
    fn insert_into_parents<P: BufferPool>(
        &mut self,
        mtr: &mut Mtr<'_, P>,
        mut path: Vec<(PageId, u16)>,
        mut sep: u64,
        mut right: PageId,
    ) {
        loop {
            let Some((parent, idx)) = path.pop() else {
                // Root split: grow a new root.
                let new_root = mtr.allocate_page();
                mtr.write(new_root, OFF_TYPE, &[TYPE_INNER]);
                mtr.write(new_root, OFF_LEVEL, &[self.height + 1]);
                mtr.write_u16(new_root, OFF_NKEYS, 1);
                mtr.write_u64(new_root, OFF_CHILD0, self.root.0);
                mtr.write_u64(new_root, self.inner.key_off(0), sep);
                mtr.write_u64(new_root, self.inner.child_off(0), right.0);
                mtr.write_u64(self.meta_page, meta::OFF_ROOT, new_root.0);
                mtr.write_u64(self.meta_page, meta::OFF_HEIGHT, self.height as u64 + 1);
                self.root = new_root;
                self.height += 1;
                return;
            };
            let nkeys = mtr.ru16(parent, OFF_NKEYS);
            if nkeys < self.inner.capacity {
                if idx < nkeys {
                    let move_len = (nkeys - idx) as usize * 16;
                    let mut buf = vec![0u8; move_len];
                    mtr.rbytes(parent, self.inner.key_off(idx), &mut buf);
                    mtr.write(parent, self.inner.key_off(idx + 1), &buf);
                }
                mtr.write_u64(parent, self.inner.key_off(idx), sep);
                mtr.write_u64(parent, self.inner.child_off(idx), right.0);
                mtr.write_u16(parent, OFF_NKEYS, nkeys + 1);
                return;
            }
            // Parent full: split it, place (sep, right) in the correct
            // half, propagate the promoted key.
            let (promoted, parent_right) = self.split_inner(mtr, parent);
            let left_keys = mtr.ru16(parent, OFF_NKEYS);
            let (target, tidx) = if sep >= promoted {
                (parent_right, idx - (left_keys + 1))
            } else {
                (parent, idx)
            };
            let tn = mtr.ru16(target, OFF_NKEYS);
            if tidx < tn {
                let move_len = (tn - tidx) as usize * 16;
                let mut buf = vec![0u8; move_len];
                mtr.rbytes(target, self.inner.key_off(tidx), &mut buf);
                mtr.write(target, self.inner.key_off(tidx + 1), &buf);
            }
            mtr.write_u64(target, self.inner.key_off(tidx), sep);
            mtr.write_u64(target, self.inner.child_off(tidx), right.0);
            mtr.write_u16(target, OFF_NKEYS, tn + 1);
            sep = promoted;
            right = parent_right;
        }
    }

    // ------------------------------------------------------ validation

    /// Structural validation (tests): key order, child separation,
    /// uniform leaf depth, leaf-chain order, heap/slot consistency.
    /// Returns the number of records. Untimed.
    pub fn check_invariants<P: BufferPool>(&self, pool: &mut P) -> u64 {
        let count = self.check_node(pool, self.root, self.height, u64::MIN, u64::MAX);
        let mut leaf = self.leftmost_leaf(pool);
        let mut last: Option<u64> = None;
        let mut chain_count = 0u64;
        loop {
            let mut cur = Cursor {
                pool,
                now: SimTime::ZERO,
            };
            let nkeys = cur.ru16(leaf, OFF_NKEYS);
            for i in 0..nkeys {
                let h = cur.ru16(leaf, self.leaf.slot_off(i));
                let k = cur.ru64(leaf, self.leaf.heap_off(h));
                if let Some(l) = last {
                    assert!(k > l, "leaf chain out of order: {l} -> {k}");
                }
                last = Some(k);
                chain_count += 1;
            }
            let next = cur.ru64(leaf, OFF_NEXT_LEAF);
            if next == 0 {
                break;
            }
            leaf = PageId(next);
        }
        assert_eq!(count, chain_count, "tree count vs leaf chain count");
        count
    }

    fn leftmost_leaf<P: BufferPool>(&self, pool: &mut P) -> PageId {
        let mut cur = Cursor {
            pool,
            now: SimTime::ZERO,
        };
        let mut page = self.root;
        for _ in 0..self.height {
            page = PageId(cur.ru64(page, OFF_CHILD0));
        }
        page
    }

    fn check_node<P: BufferPool>(
        &self,
        pool: &mut P,
        page: PageId,
        level: u8,
        lo: u64,
        hi: u64,
    ) -> u64 {
        let mut cur = Cursor {
            pool,
            now: SimTime::ZERO,
        };
        let mut ty = [0u8; 1];
        cur.rbytes(page, OFF_TYPE, &mut ty);
        let nkeys = cur.ru16(page, OFF_NKEYS);
        if level == 0 {
            assert_eq!(ty[0], TYPE_LEAF, "leaf level must hold leaf pages");
            let heap_used = cur.ru16(page, OFF_HEAP_USED);
            assert!(heap_used <= self.leaf.capacity);
            let mut prev: Option<u64> = None;
            let mut seen = std::collections::HashSet::new();
            for i in 0..nkeys {
                let h = cur.ru16(page, self.leaf.slot_off(i));
                assert!(h < heap_used, "slot points past heap ({h} >= {heap_used})");
                assert!(seen.insert(h), "two slots share heap cell {h}");
                let k = cur.ru64(page, self.leaf.heap_off(h));
                assert!(k >= lo && k < hi, "leaf key {k} outside [{lo},{hi})");
                if let Some(p) = prev {
                    assert!(k > p, "unsorted leaf");
                }
                prev = Some(k);
            }
            // The free list accounts for every heap cell not referenced
            // by a slot.
            let mut free = cur.ru16(page, OFF_FREE_HEAD);
            let mut free_cells = 0;
            while free != 0 {
                let h = free - 1;
                assert!(h < heap_used, "free cell past heap");
                assert!(!seen.contains(&h), "live cell {h} on free list");
                assert!(free_cells <= heap_used, "cycle in heap free list");
                free_cells += 1;
                free = cur.ru16(page, self.leaf.heap_off(h));
            }
            assert_eq!(
                nkeys + free_cells,
                heap_used,
                "heap cells must be either live or free"
            );
            return nkeys as u64;
        }
        assert_eq!(ty[0], TYPE_INNER, "inner level must hold inner pages");
        // A non-root inner node may transiently hold a single child (zero
        // separators) after lazy merges; the root never does (it collapses).
        if page == self.root {
            assert!(nkeys >= 1, "root inner node must have at least one key");
        }
        let mut keys = Vec::with_capacity(nkeys as usize);
        let mut children = vec![PageId(cur.ru64(page, OFF_CHILD0))];
        for i in 0..nkeys {
            keys.push(cur.ru64(page, self.inner.key_off(i)));
            children.push(PageId(cur.ru64(page, self.inner.child_off(i))));
        }
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "unsorted inner keys");
        }
        if !keys.is_empty() {
            assert!(
                keys[0] >= lo && *keys.last().unwrap() < hi,
                "inner keys out of range"
            );
        }
        let mut total = 0;
        for (i, child) in children.iter().enumerate() {
            let clo = if i == 0 { lo } else { keys[i - 1] };
            let chi = if i < keys.len() { keys[i] } else { hi };
            total += self.check_node(pool, *child, level - 1, clo, chi);
        }
        total
    }
}

// HEADER is used by the slot/heap geometry assertions in page.rs tests;
// referenced here to keep the import meaningful if layouts change.
const _: () = assert!(HEADER == 16);
