//! Mini-transactions: latched, redo-logged multi-page updates.
//!
//! A structure-modification operation (SMO — page split/merge) must be
//! atomic with respect to crashes and invisible to concurrent readers.
//! PolarDB protects SMOs with mini-transactions (§3.2): pages touched by
//! the mtr are write-latched two-phase (held until commit), every page
//! write is preceded by a redo record (WAL rule), and the redo group
//! becomes durable atomically.
//!
//! On the CXL pool the latch state is *persisted* before the first write
//! and cleared (after flushing the modified lines) at commit — which is
//! exactly the signal `polarcxlmem::recovery` uses to find torn pages.

use bufferpool::BufferPool;
use memsim::Access;
use simkit::SimTime;
use storage::{PageId, Wal};

/// An open mini-transaction over a pool and its WAL.
pub struct Mtr<'a, P: BufferPool> {
    pool: &'a mut P,
    wal: &'a mut Wal,
    latched: Vec<PageId>,
    now: SimTime,
    writes: u64,
}

impl<'a, P: BufferPool> Mtr<'a, P> {
    /// Begin a mini-transaction at `now`.
    pub fn begin(pool: &'a mut P, wal: &'a mut Wal, now: SimTime) -> Self {
        Mtr {
            pool,
            wal,
            latched: Vec::new(),
            now,
            writes: 0,
        }
    }

    /// Current virtual time inside the mtr.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of page writes so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The underlying pool (read-only helpers).
    pub fn pool(&mut self) -> &mut P {
        self.pool
    }

    /// Timed read within the mtr.
    pub fn read(&mut self, page: PageId, off: u16, buf: &mut [u8]) -> Access {
        let a = self.pool.read(page, off, buf, self.now);
        self.now = a.end;
        a
    }

    /// Read a little-endian u64.
    pub fn read_u64(&mut self, page: PageId, off: u16) -> u64 {
        let mut b = [0u8; 8];
        self.read(page, off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian u16.
    pub fn read_u16(&mut self, page: PageId, off: u16) -> u16 {
        let mut b = [0u8; 2];
        self.read(page, off, &mut b);
        u16::from_le_bytes(b)
    }

    /// Redo-logged, latched write within the mtr.
    pub fn write(&mut self, page: PageId, off: u16, data: &[u8]) {
        if !self.latched.contains(&page) {
            // First touch: take (and, on CXL, persist) the write latch.
            self.now = self.pool.set_latch(page, true, self.now);
            self.latched.push(page);
        }
        // WAL rule: log first, then write the page.
        let lsn = self.wal.append_update(page, off, data);
        let a = self.pool.write(page, off, data, lsn, self.now);
        self.now = a.end;
        self.writes += 1;
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, page: PageId, off: u16, v: u64) {
        self.write(page, off, &v.to_le_bytes());
    }

    /// Write a little-endian u16.
    pub fn write_u16(&mut self, page: PageId, off: u16, v: u16) {
        self.write(page, off, &v.to_le_bytes());
    }

    /// Allocate a fresh page inside the mtr.
    pub fn allocate_page(&mut self) -> PageId {
        let (id, t) = self.pool.allocate_page(self.now);
        self.now = t;
        id
    }

    /// Commit: seal the redo group, then release latches in reverse
    /// order (on CXL this flushes each page's dirty lines before
    /// clearing its persisted latch). Returns the commit completion time.
    ///
    /// Latches are intentionally released only *after* the group is
    /// sealed in the log buffer, matching the two-phase policy: a crash
    /// while any page is still latched forces redo-based rebuild of all
    /// of the mtr's pages.
    pub fn commit(mut self) -> SimTime {
        self.wal.seal_mtr();
        let mut t = self.now;
        while let Some(page) = self.latched.pop() {
            t = self.pool.set_latch(page, false, t);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferpool::dram_bp::DramBp;
    use storage::{Lsn, PageStore};

    fn pool() -> DramBp {
        let mut store = PageStore::with_page_size(8, 512);
        for _ in 0..4 {
            store.allocate();
        }
        DramBp::new(8, 64 << 10, store)
    }

    #[test]
    fn writes_are_logged_before_applied() {
        let mut bp = pool();
        let mut wal = Wal::new();
        let mut mtr = Mtr::begin(&mut bp, &mut wal, SimTime::ZERO);
        mtr.write(PageId(1), 10, &[1, 2, 3]);
        mtr.write_u64(PageId(2), 0, 99);
        mtr.commit();
        wal.flush(SimTime::ZERO);
        let recs: Vec<_> = wal.replay_from(Lsn::ZERO).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].page, PageId(1));
        assert_eq!(recs[0].data, vec![1, 2, 3]);
        assert!(!recs[0].mtr_end);
        assert!(recs[1].mtr_end, "group sealed at commit");
        // And the pages carry the records' LSNs.
        assert_eq!(bp.page_lsn(PageId(1)), Some(recs[0].lsn));
        assert_eq!(bp.page_lsn(PageId(2)), Some(recs[1].lsn));
    }

    #[test]
    fn read_helpers_roundtrip() {
        let mut bp = pool();
        let mut wal = Wal::new();
        let mut mtr = Mtr::begin(&mut bp, &mut wal, SimTime::ZERO);
        mtr.write_u64(PageId(0), 100, 0xDEAD_BEEF);
        mtr.write_u16(PageId(0), 108, 513);
        assert_eq!(mtr.read_u64(PageId(0), 100), 0xDEAD_BEEF);
        assert_eq!(mtr.read_u16(PageId(0), 108), 513);
        mtr.commit();
    }

    #[test]
    fn time_advances_through_the_mtr() {
        let mut bp = pool();
        let mut wal = Wal::new();
        let mut mtr = Mtr::begin(&mut bp, &mut wal, SimTime::from_micros(5));
        assert_eq!(mtr.now(), SimTime::from_micros(5));
        mtr.write(PageId(0), 0, &[1]);
        assert!(mtr.now() > SimTime::from_micros(5));
        let end = mtr.commit();
        assert!(end > SimTime::from_micros(5));
    }

    #[test]
    fn allocate_inside_mtr() {
        let mut bp = pool();
        let mut wal = Wal::new();
        let mut mtr = Mtr::begin(&mut bp, &mut wal, SimTime::ZERO);
        let p = mtr.allocate_page();
        assert_eq!(p, PageId(4));
        mtr.write(p, 0, &[7]);
        mtr.commit();
    }
}
