//! Ablation: what each piece of the coherency design is worth.
//!
//! Compares three coherency modes on the sysbench point-update sharing
//! workload (8 nodes):
//! - `cxl-lines`   — the paper's §3.3 protocol (flush modified 64-B lines);
//! - `cxl-fullpage`— same protocol but flushing whole pages on publish
//!   (page-granularity thinking ported to CXL — isolates the benefit of
//!   line-granularity sync);
//! - `cxl3-hw`     — forward-looking CXL 3.0 hardware coherency (§2.2(4):
//!   "removes this overhead from the application layer").

use bench::{banner, footer, kqps};
use workloads::sharing::{point_update_gen, run_sharing, SharingConfig, SharingSystem};

fn main() {
    banner(
        "Ablation A1",
        "Coherency design: line-flush vs full-page-flush vs CXL 3.0 hardware",
        "the paper argues 64-B-granularity sync is the key saving over page-granularity; CXL 3.0 would remove the software protocol entirely",
    );
    println!(
        "{:>7} | {:>14} {:>14} {:>14}",
        "shared", "cxl-fullpage", "cxl-lines", "cxl3-hw"
    );
    for &pct in &[20u32, 40, 60, 80, 100] {
        let mut row = Vec::new();
        for sys in [
            SharingSystem::CxlFullPageFlush,
            SharingSystem::Cxl,
            SharingSystem::Cxl3Hw,
        ] {
            let cfg = SharingConfig::standard(sys, 8);
            let r = run_sharing(&cfg, point_update_gen(cfg.layout, pct));
            row.push(r.metrics.qps);
        }
        println!(
            "{:>6}% | {:>14} {:>14} {:>14}",
            pct,
            kqps(row[0]),
            kqps(row[1]),
            kqps(row[2])
        );
    }
    footer("all columns K-QPS; line-granularity flushing recovers most of the gap to hardware coherency");
}
