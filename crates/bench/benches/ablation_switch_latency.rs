//! Ablation: is the CXL switch's extra latency really negligible?
//!
//! §2.3 measures that the switch roughly doubles load latency (265 → 549
//! ns) and claims "the additional latency introduced by the CXL switch
//! proves to be negligible in cloud database scenarios". This bench runs
//! the same pooling workloads with direct-attach latencies vs switched
//! latencies and reports the end-to-end difference.

use bench::{banner, footer, kqps};
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

fn main() {
    banner(
        "Ablation A4",
        "End-to-end cost of the CXL switch (direct-attach vs switched)",
        "§2.3: switch doubles raw load latency (265→549 ns) yet is 'negligible in cloud database scenarios'",
    );
    println!(
        "{:<12} {:>4} | {:>14} {:>14} {:>9} | {:>12} {:>12}",
        "workload", "n", "direct K-QPS", "switch K-QPS", "delta", "direct lat", "switch lat"
    );
    for wl in [SysbenchKind::PointSelect, SysbenchKind::ReadWrite] {
        for n in [1usize, 8] {
            let mut direct = PoolingConfig::standard(PoolKind::Cxl, wl, n);
            direct.direct_attach = true;
            let mut switched = PoolingConfig::standard(PoolKind::Cxl, wl, n);
            switched.direct_attach = false;
            let d = run_pooling(&direct);
            let s = run_pooling(&switched);
            println!(
                "{:<12} {:>4} | {:>14} {:>14} {:>8.2}% | {:>10.1}us {:>10.1}us",
                format!("{wl:?}"),
                n,
                kqps(d.metrics.qps),
                kqps(s.metrics.qps),
                (d.metrics.qps / s.metrics.qps - 1.0) * 100.0,
                d.metrics.avg_latency_us,
                s.metrics.avg_latency_us
            );
        }
    }
    footer(
        "the switch's ~284 ns per miss disappears under CPU service time - the paper's claim holds",
    );
}
