//! tiering: hotness-aware adaptive tiering at larger-than-memory scale.
//!
//! Sweeps the [`workloads::tiering`] harness — zipfian page traffic
//! over a working set 16x the combined DRAM+CXL memory — across the
//! three eviction policies (LRU / CLOCK / 2Q), the three phase patterns
//! (stable / diurnal / burst), and the two migration regimes (static
//! demand paging vs adaptive epoch sweeps). Reports storage miss rate,
//! DRAM hit rate and tail latency per cell, and checks the tentpole
//! claim: under at least one skewed/phase-shifted configuration the
//! adaptive regime beats static LRU on *both* storage miss rate and
//! p99 latency. All numbers are simulated quantities, so the artifact
//! is bit-reproducible.
//!
//! Writes `BENCH_tiering.json` at the repository root. Regenerate with:
//! `cargo bench -p bench --bench tiering`
//!
//! Set `TIERING_SMOKE=1` for a CI-sized run that exercises every cell
//! but skips the JSON artifact.

use bench::sweep::json;
use bench::{banner, footer, kqps, run_sweep};
use bufferpool::PolicyKind;
use simkit::SimTime;
use workloads::{run_tiering, PhasePattern, TieringConfig, TieringResult};

struct Cell {
    pattern: PhasePattern,
    policy: PolicyKind,
    adaptive: bool,
    theta: f64,
}

/// The two skew points of the sweep. 0.99 is the YCSB default: the hot
/// mass is wider than DRAM+CXL, so every regime is storage-bound and
/// recency paging is hard to beat. 1.8 is the "hot tenant" regime the
/// adaptive sweep targets: the head fits in DRAM, the middle fits in
/// CXL, and the difference between protecting that head and letting
/// scans flush it shows up in both miss rate and tail latency.
const THETAS: [f64; 2] = [0.99, 1.8];

fn configs(smoke: bool) -> (Vec<Cell>, Vec<TieringConfig>) {
    let mut cells = Vec::new();
    let mut cfgs = Vec::new();
    let thetas: &[f64] = if smoke { &THETAS[..1] } else { &THETAS };
    for &theta in thetas {
        for pattern in PhasePattern::ALL {
            for policy in PolicyKind::ALL {
                for adaptive in [false, true] {
                    let mut c = TieringConfig::standard(policy, adaptive);
                    c.pattern = pattern;
                    c.theta = theta;
                    if smoke {
                        c.dram_frames = 16;
                        c.cxl_blocks = 48;
                        c.pages = 10 * 64;
                        c.workers = 4;
                        c.duration = SimTime::from_millis(8);
                        c.phase = SimTime::from_millis(2);
                    } else {
                        c.duration = SimTime::from_millis(80);
                        c.phase = SimTime::from_millis(10);
                    }
                    cells.push(Cell {
                        pattern,
                        policy,
                        adaptive,
                        theta,
                    });
                    cfgs.push(c);
                }
            }
        }
    }
    (cells, cfgs)
}

fn main() {
    let smoke = std::env::var("TIERING_SMOKE").is_ok_and(|v| v == "1");
    banner(
        "Tiering",
        "Hotness-aware adaptive tiering, larger-than-memory",
        "adaptive promote/demote with byte-granular CXL service keeps the zipfian head in DRAM and stops scans/phase shifts from flushing it",
    );
    let (cells, cfgs) = configs(smoke);
    println!(
        "tiering{}: {} cells ({} thetas x {} patterns x {} policies x 2 regimes), working set {}x memory",
        if smoke { " [smoke]" } else { "" },
        cfgs.len(),
        if smoke { 1 } else { THETAS.len() },
        PhasePattern::ALL.len(),
        PolicyKind::ALL.len(),
        cfgs[0].pages / (cfgs[0].dram_frames + cfgs[0].cxl_blocks) as u64,
    );
    let results: Vec<TieringResult> = run_sweep(&cfgs, run_tiering);

    println!(
        "{:>6} {:>8} {:>7} {:>9} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "theta",
        "pattern",
        "policy",
        "regime",
        "K-QPS",
        "miss_rate",
        "dram_hit",
        "p99 (us)",
        "promotes",
        "demotes"
    );
    for (cell, r) in cells.iter().zip(results.iter()) {
        let promotes = int_metric(r, "bp_tier_promotes");
        let demotes = int_metric(r, "bp_tier_demotes");
        println!(
            "{:>6} {:>8} {:>7} {:>9} {:>10} {:>10.4} {:>10.4} {:>10.1} {:>9} {:>9}",
            cell.theta,
            cell.pattern.name(),
            cell.policy.name(),
            regime(cell.adaptive),
            kqps(r.metrics.qps),
            r.storage_miss_rate,
            r.dram_hit_rate,
            r.metrics.p99_latency_us,
            promotes,
            demotes,
        );
    }

    // The tentpole comparison: adaptive vs the static-LRU baseline of
    // the same skew and pattern, on miss rate and p99 together.
    let static_lru = |pattern: PhasePattern, theta: f64| -> &TieringResult {
        cells
            .iter()
            .zip(results.iter())
            .find(|(c, _)| {
                c.pattern == pattern
                    && c.theta == theta
                    && c.policy == PolicyKind::Lru
                    && !c.adaptive
            })
            .map(|(_, r)| r)
            .expect("static LRU cell present")
    };
    let mut wins = Vec::new();
    println!("\nadaptive vs static LRU (same theta and pattern):");
    for (cell, r) in cells.iter().zip(results.iter()) {
        if !cell.adaptive {
            continue;
        }
        let base = static_lru(cell.pattern, cell.theta);
        let beats = r.storage_miss_rate < base.storage_miss_rate
            && r.metrics.p99_latency_us < base.metrics.p99_latency_us;
        println!(
            "  {:>4}/{:>8}/{:<5} miss {:>7.4} vs {:>7.4}  p99 {:>9.1} vs {:>9.1} us  {}",
            cell.theta,
            cell.pattern.name(),
            cell.policy.name(),
            r.storage_miss_rate,
            base.storage_miss_rate,
            r.metrics.p99_latency_us,
            base.metrics.p99_latency_us,
            if beats { "WIN" } else { "-" }
        );
        if beats {
            wins.push(format!(
                "{}/{}/{}",
                cell.theta,
                cell.pattern.name(),
                cell.policy.name()
            ));
        }
    }
    // Simulated quantities are bit-deterministic, so this gate cannot
    // flake; the smoke scale is too small for the claim to bind.
    if !smoke {
        assert!(
            !wins.is_empty(),
            "adaptive tiering must beat static LRU on miss rate and p99 in at least one cell"
        );
    }
    footer(
        "adaptive admission + epoch sweeps protect the DRAM hot set where recency paging thrashes",
    );

    if smoke {
        println!("smoke mode: skipping BENCH_tiering.json");
        return;
    }

    let rows: Vec<String> = cells
        .iter()
        .zip(results.iter())
        .map(|(cell, r)| {
            json::Obj::new()
                .num("zipf_theta", cell.theta)
                .str("pattern", cell.pattern.name())
                .str("policy", cell.policy.name())
                .str("regime", regime(cell.adaptive))
                .num("qps", r.metrics.qps)
                .num("storage_miss_rate", r.storage_miss_rate)
                .num("dram_hit_rate", r.dram_hit_rate)
                .num("p50_latency_us", r.metrics.p50_latency_us)
                .num("p99_latency_us", r.metrics.p99_latency_us)
                .num("p999_latency_us", r.metrics.p999_latency_us)
                .int("tier_promotes", int_metric(r, "bp_tier_promotes"))
                .int("tier_demotes", int_metric(r, "bp_tier_demotes"))
                .int("sweeps", r.sweeps)
                .build()
        })
        .collect();
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let cfg0 = &cfgs[0];
    let doc = json::Obj::new()
        .str("bench", "tiering")
        .str(
            "sweep",
            "zipf theta 0.99/1.8, 16x larger-than-memory, stable/diurnal/burst x lru/clock/2q x static/adaptive",
        )
        .int("generated_unix", unix_secs)
        .int("pages", cfg0.pages)
        .int("page_size", cfg0.page_size)
        .int("dram_frames", cfg0.dram_frames as u64)
        .int("cxl_blocks", cfg0.cxl_blocks as u64)
        .int("workers", cfg0.workers as u64)
        .int("write_pct", cfg0.write_pct as u64)
        .int("duration_ms", cfg0.duration.as_nanos() / 1_000_000)
        .int("adaptive_wins_vs_static_lru", wins.len() as u64)
        .str("win_cells", &wins.join(","))
        .arr("cells", &rows)
        .build_pretty();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_tiering.json");
    std::fs::write(&path, doc + "\n").expect("write BENCH_tiering.json");
    println!("wrote {}", path.display());
}

fn regime(adaptive: bool) -> &'static str {
    if adaptive {
        "adaptive"
    } else {
        "static"
    }
}

fn int_metric(r: &TieringResult, key: &str) -> u64 {
    match r.registry.get(key) {
        Some(simkit::MetricValue::Int(v)) => v,
        other => panic!("missing {key}: {other:?}"),
    }
}
