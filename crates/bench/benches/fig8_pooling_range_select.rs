//! Figure 8: pooling comparison under sysbench range-select
//! (32 threads/instance) at 2/4/8/12 instances.

use bench::{banner, footer, kqps, run_sweep};
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

const POINTS: [usize; 4] = [2, 4, 8, 12];

fn main() {
    banner(
        "Figure 8",
        "Pooling: range-select, RDMA vs PolarCXLMem",
        "RDMA saturates at 4 instances (~11 GB/s); PolarCXLMem keeps scaling",
    );
    println!(
        "{:>4} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
        "n", "RDMA K-QPS", "CXL K-QPS", "RDMA lat us", "CXL lat us", "RDMA GB/s", "CXL GB/s"
    );
    let configs: Vec<PoolingConfig> = POINTS
        .iter()
        .flat_map(|&n| {
            [
                PoolingConfig::standard(PoolKind::TieredRdma, SysbenchKind::RangeSelect, n),
                PoolingConfig::standard(PoolKind::Cxl, SysbenchKind::RangeSelect, n),
            ]
        })
        .collect();
    let results = run_sweep(&configs, run_pooling);
    for (pair, &n) in results.chunks(2).zip(POINTS.iter()) {
        let (r, c) = (&pair[0].metrics, &pair[1].metrics);
        println!(
            "{:>4} | {:>12} {:>12} | {:>12.1} {:>12.1} | {:>10.2} {:>10.2}",
            n,
            kqps(r.qps),
            kqps(c.qps),
            r.avg_latency_us,
            c.avg_latency_us,
            r.interconnect_gbps,
            c.interconnect_gbps
        );
    }
    footer("ranges read whole pages usefully, so RDMA's amplification is smaller - but bandwidth still caps it");
}
