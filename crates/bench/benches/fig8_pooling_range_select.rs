//! Figure 8: pooling comparison under sysbench range-select
//! (32 threads/instance) at 2/4/8/12 instances.

use bench::{banner, footer, kqps};
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

fn main() {
    banner(
        "Figure 8",
        "Pooling: range-select, RDMA vs PolarCXLMem",
        "RDMA saturates at 4 instances (~11 GB/s); PolarCXLMem keeps scaling",
    );
    println!(
        "{:>4} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
        "n", "RDMA K-QPS", "CXL K-QPS", "RDMA lat us", "CXL lat us", "RDMA GB/s", "CXL GB/s"
    );
    for &n in &[2usize, 4, 8, 12] {
        let r = run_pooling(&PoolingConfig::standard(
            PoolKind::TieredRdma,
            SysbenchKind::RangeSelect,
            n,
        ));
        let c = run_pooling(&PoolingConfig::standard(
            PoolKind::Cxl,
            SysbenchKind::RangeSelect,
            n,
        ));
        println!(
            "{:>4} | {:>12} {:>12} | {:>12.1} {:>12.1} | {:>10.2} {:>10.2}",
            n,
            kqps(r.metrics.qps),
            kqps(c.metrics.qps),
            r.metrics.avg_latency_us,
            c.metrics.avg_latency_us,
            r.metrics.interconnect_gbps,
            c.metrics.interconnect_gbps
        );
    }
    footer("ranges read whole pages usefully, so RDMA's amplification is smaller - but bandwidth still caps it");
}
