//! Figure 1: impact of the local-buffer-pool size in RDMA-based
//! systems — throughput and RDMA bandwidth as the LBP grows from 10 %
//! to 100 % of the disaggregated memory, for point-select and
//! read-write.

use bench::{banner, footer, kqps, run_sweep};
use simkit::SimTime;
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

const FRACS: [f64; 5] = [0.10, 0.30, 0.50, 0.70, 1.00];

fn main() {
    banner(
        "Figure 1",
        "Impact of LBP size in RDMA-based systems",
        "point-select: 6.9 GB/s at 10% LBP falling to 0 at 100%; read-write: 3.9 GB/s at 10%; throughput rises as LBP grows",
    );
    let workloads = [SysbenchKind::PointSelect, SysbenchKind::ReadWrite];
    let configs: Vec<PoolingConfig> = workloads
        .iter()
        .flat_map(|&w| {
            FRACS.iter().map(move |&frac| {
                let mut cfg = PoolingConfig::standard(PoolKind::TieredRdma, w, 1);
                cfg.lbp_fraction = frac;
                cfg.duration = SimTime::from_millis(200);
                cfg
            })
        })
        .collect();
    let results = run_sweep(&configs, run_pooling);
    for (series, &w) in results.chunks(FRACS.len()).zip(workloads.iter()) {
        println!("[{w:?}]");
        println!(
            "{:>6} {:>14} {:>16} {:>14}",
            "LBP", "K-QPS", "RDMA GB/s", "avg lat (us)"
        );
        for (r, &frac) in series.iter().zip(FRACS.iter()) {
            println!(
                "{:>5.0}% {:>14} {:>16.2} {:>14.1}",
                frac * 100.0,
                kqps(r.metrics.qps),
                r.metrics.interconnect_gbps,
                r.metrics.avg_latency_us
            );
        }
        println!();
    }
    footer(
        "bandwidth falls and throughput rises with LBP size - the cost is the LBP memory itself",
    );
}
