//! Figure 1: impact of the local-buffer-pool size in RDMA-based
//! systems — throughput and RDMA bandwidth as the LBP grows from 10 %
//! to 100 % of the disaggregated memory, for point-select and
//! read-write.

use bench::{banner, footer, kqps};
use simkit::SimTime;
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

fn sweep(workload: SysbenchKind) {
    println!("[{workload:?}]");
    println!(
        "{:>6} {:>14} {:>16} {:>14}",
        "LBP", "K-QPS", "RDMA GB/s", "avg lat (us)"
    );
    for &frac in &[0.10f64, 0.30, 0.50, 0.70, 1.00] {
        let mut cfg = PoolingConfig::standard(PoolKind::TieredRdma, workload, 1);
        cfg.lbp_fraction = frac;
        cfg.duration = SimTime::from_millis(200);
        let r = run_pooling(&cfg);
        println!(
            "{:>5.0}% {:>14} {:>16.2} {:>14.1}",
            frac * 100.0,
            kqps(r.metrics.qps),
            r.metrics.interconnect_gbps,
            r.metrics.avg_latency_us
        );
    }
}

fn main() {
    banner(
        "Figure 1",
        "Impact of LBP size in RDMA-based systems",
        "point-select: 6.9 GB/s at 10% LBP falling to 0 at 100%; read-write: 3.9 GB/s at 10%; throughput rises as LBP grows",
    );
    sweep(SysbenchKind::PointSelect);
    println!();
    sweep(SysbenchKind::ReadWrite);
    footer("bandwidth falls and throughput rises with LBP size - the cost is the LBP memory itself");
}
