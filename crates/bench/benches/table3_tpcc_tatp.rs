//! Table 3: TPC-C and TATP on a 15-node cluster — RDMA-based PolarDB-MP
//! with 10 % and 30 % LBP vs PolarCXLMem; throughput, latency and
//! relative memory overhead.

use bench::{banner, footer, improvement_pct, run_sweep};
use workloads::sharing::{run_sharing, GroupLayout, SharingConfig, SharingSystem};
use workloads::tatp::Tatp;
use workloads::tpcc::Tpcc;

const NODES: usize = 15;

fn cfg(system: SharingSystem) -> SharingConfig {
    let mut c = SharingConfig::standard(system, NODES);
    // TPC-C/TATP partitions: one group per node (no extra shared group;
    // cross-warehouse ops target other nodes' groups directly).
    c.layout = GroupLayout {
        groups: NODES,
        rows_per_group: 6_000,
    };
    c.duration = simkit::SimTime::from_millis(150);
    c
}

fn run_tpcc(system: SharingSystem) -> (f64, f64, u64) {
    let c = cfg(system);
    let layout = c.layout;
    let gen = Tpcc::new(layout, NODES);
    let r = run_sharing(&c, |rng, node| gen.next_txn(rng, node).0);
    // TpmC: New-Order transactions per minute (45% of the mix).
    let tpmc = r.metrics.tps * 0.45 * 60.0;
    (tpmc, r.metrics.p95_latency_us / 1e3, r.metrics.memory_bytes)
}

fn run_tatp(system: SharingSystem) -> (f64, f64, u64) {
    let c = cfg(system);
    let layout = c.layout;
    let gen = Tatp::new(layout);
    let r = run_sharing(&c, |rng, node| gen.next_txn(rng, node).0);
    (
        r.metrics.qps,
        r.metrics.avg_latency_us / 1e3,
        r.metrics.memory_bytes,
    )
}

fn main() {
    banner(
        "Table 3",
        "TPC-C and TATP on 15 nodes",
        "TPC-C: 1.11/1.65/1.92 MtpmC (RDMA-10/RDMA-30/CXL); TATP: 2.35/2.77/3.61 MQPS; CXL has the lowest memory",
    );
    let systems = [
        ("RDMA 10% LBP", SharingSystem::Rdma { lbp_fraction: 0.1 }),
        ("RDMA 30% LBP", SharingSystem::Rdma { lbp_fraction: 0.3 }),
        ("PolarCXLMem", SharingSystem::Cxl),
    ];

    // One sweep over benchmark x system: all six cluster simulations are
    // independent worlds, so they fan out across host threads.
    let configs: Vec<(bool, SharingSystem)> = [false, true]
        .into_iter()
        .flat_map(|tatp| systems.iter().map(move |&(_, sys)| (tatp, sys)))
        .collect();
    let results = run_sweep(
        &configs,
        |&(tatp, sys)| {
            if tatp {
                run_tatp(sys)
            } else {
                run_tpcc(sys)
            }
        },
    );

    println!("[TPC-C]");
    println!(
        "{:<14} {:>12} {:>16} {:>14}",
        "system", "TpmC (K)", "p95 lat (ms)", "memory (MB)"
    );
    let mut tpcc = Vec::new();
    for ((name, _), &(tpmc, lat, mem)) in systems.iter().zip(&results[..3]) {
        println!(
            "{:<14} {:>12.1} {:>16.2} {:>14.1}",
            name,
            tpmc / 1e3,
            lat,
            mem as f64 / 1e6
        );
        tpcc.push(tpmc);
    }
    println!(
        "  CXL vs RDMA-10: {:+.1}%   CXL vs RDMA-30: {:+.1}%",
        improvement_pct(tpcc[2], tpcc[0]),
        improvement_pct(tpcc[2], tpcc[1])
    );

    println!("\n[TATP]");
    println!(
        "{:<14} {:>12} {:>16} {:>14}",
        "system", "K-QPS", "avg lat (ms)", "memory (MB)"
    );
    let mut tatp = Vec::new();
    for ((name, _), &(qps, lat, mem)) in systems.iter().zip(&results[3..]) {
        println!(
            "{:<14} {:>12.1} {:>16.3} {:>14.1}",
            name,
            qps / 1e3,
            lat,
            mem as f64 / 1e6
        );
        tatp.push(qps);
    }
    println!(
        "  CXL vs RDMA-10: {:+.1}%   CXL vs RDMA-30: {:+.1}%",
        improvement_pct(tatp[2], tatp[0]),
        improvement_pct(tatp[2], tatp[1])
    );
    footer(
        "well-partitioned workloads still benefit from no amplification and no LBP memory overhead",
    );
}
