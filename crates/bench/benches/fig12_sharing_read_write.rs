//! Figure 12: sharing under sysbench read-write on 8- and 12-node
//! clusters, 20–100 % shared data.

use bench::{banner, footer, improvement_pct, kqps, run_sweep};
use workloads::sharing::{
    read_write_gen, run_sharing, SharingConfig, SharingResult, SharingSystem,
};

const NODES: [usize; 2] = [8, 12];
const SHARED: [u32; 5] = [20, 40, 60, 80, 100];

fn run_point(&(nodes, pct, cxl): &(usize, u32, bool)) -> SharingResult {
    let system = if cxl {
        SharingSystem::Cxl
    } else {
        SharingSystem::Rdma { lbp_fraction: 0.3 }
    };
    let cfg = SharingConfig::standard(system, nodes);
    run_sharing(&cfg, read_write_gen(cfg.layout, pct))
}

fn main() {
    banner(
        "Figure 12",
        "Sharing: read-write, 8 and 12 nodes",
        "peak improvement +68.2% (8 nodes) and +154.4% (12 nodes) at 60% shared; +34%/+126% even at 100%",
    );
    let configs: Vec<(usize, u32, bool)> = NODES
        .iter()
        .flat_map(|&nodes| {
            SHARED
                .iter()
                .flat_map(move |&pct| [(nodes, pct, false), (nodes, pct, true)])
        })
        .collect();
    let results = run_sweep(&configs, run_point);
    for (series, &nodes) in results.chunks(2 * SHARED.len()).zip(NODES.iter()) {
        println!("[{nodes} nodes]");
        println!(
            "{:>7} | {:>12} {:>12} {:>8}",
            "shared", "RDMA K-QPS", "CXL K-QPS", "improve"
        );
        for (pair, &pct) in series.chunks(2).zip(SHARED.iter()) {
            let (r, c) = (&pair[0].metrics, &pair[1].metrics);
            println!(
                "{:>6}% | {:>12} {:>12} {:>7.0}%",
                pct,
                kqps(r.qps),
                kqps(c.qps),
                improvement_pct(c.qps, r.qps)
            );
        }
        println!();
    }
    footer("more nodes -> more synchronization -> a bigger CXL advantage, until lock contention levels both");
}
