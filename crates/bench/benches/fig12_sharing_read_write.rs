//! Figure 12: sharing under sysbench read-write on 8- and 12-node
//! clusters, 20–100 % shared data.

use bench::{banner, footer, improvement_pct, kqps};
use workloads::sharing::{read_write_gen, run_sharing, SharingConfig, SharingSystem};

fn main() {
    banner(
        "Figure 12",
        "Sharing: read-write, 8 and 12 nodes",
        "peak improvement +68.2% (8 nodes) and +154.4% (12 nodes) at 60% shared; +34%/+126% even at 100%",
    );
    for nodes in [8usize, 12] {
        println!("[{nodes} nodes]");
        println!(
            "{:>7} | {:>12} {:>12} {:>8}",
            "shared", "RDMA K-QPS", "CXL K-QPS", "improve"
        );
        for &pct in &[20u32, 40, 60, 80, 100] {
            let rcfg = SharingConfig::standard(SharingSystem::Rdma { lbp_fraction: 0.3 }, nodes);
            let ccfg = SharingConfig::standard(SharingSystem::Cxl, nodes);
            let r = run_sharing(&rcfg, read_write_gen(rcfg.layout, pct));
            let c = run_sharing(&ccfg, read_write_gen(ccfg.layout, pct));
            println!(
                "{:>6}% | {:>12} {:>12} {:>7.0}%",
                pct,
                kqps(r.metrics.qps),
                kqps(c.metrics.qps),
                improvement_pct(c.metrics.qps, r.metrics.qps)
            );
        }
        println!();
    }
    footer("more nodes -> more synchronization -> a bigger CXL advantage, until lock contention levels both");
}
