//! host_perf: how fast does the simulator itself run, and where does the
//! host time go?
//!
//! Times a standard fig7-style pooling sweep (RDMA vs CXL point-select
//! across instance counts) twice in host wall-clock — once on a single
//! thread, once across [`host_threads`] workers — verifies the two
//! produce bit-identical simulation results, then runs a separate
//! profiled pass (single thread, `simkit::profile` enabled) to break the
//! host time down by simulator subsystem, and measures steady-state heap
//! allocations per simulated query on the two disaggregated designs.
//! Everything is written to `BENCH_host_perf.json` at the repository
//! root; `BENCH_host_perf.baseline.json` (if present) supplies the
//! pre-optimization reference the speedup is reported against.
//!
//! Regenerate with:
//! `cargo bench -p bench --bench host_perf`
//!
//! Set `HOST_PERF_SMOKE=1` for a CI-sized run (2 configs, short
//! windows) that exercises every code path but skips the JSON artifact.

use bench::sweep::json;
use bench::{host_threads, run_sweep_threads};
use bufferpool::PolicyKind;
use simkit::{profile, trace, Lane, QueryBreakdown, SimTime};
use std::time::Instant;
use workloads::sharing::{point_update_gen, run_sharing, SharingConfig, SharingSystem};
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

// Count every heap allocation the simulator makes; the profiler's
// per-subsystem allocation columns and the allocs-per-query numbers
// below both read this counter.
#[global_allocator]
static ALLOC: profile::CountingAlloc = profile::CountingAlloc;

/// Scale knobs for the full run vs the CI smoke run.
struct Scale {
    max_instances: usize,
    window: SimTime,
    table_size: u64,
}

fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            max_instances: 1,
            window: SimTime::from_millis(20),
            table_size: 5_000,
        }
    } else {
        Scale {
            max_instances: 8,
            window: SimTime::from_millis(100),
            table_size: 30_000,
        }
    }
}

fn sweep_configs(sc: &Scale) -> Vec<PoolingConfig> {
    (1..=sc.max_instances)
        .flat_map(|n| {
            [
                PoolingConfig::standard(PoolKind::TieredRdma, SysbenchKind::PointSelect, n),
                PoolingConfig::standard(PoolKind::Cxl, SysbenchKind::PointSelect, n),
            ]
        })
        .map(|mut c| {
            c.duration = sc.window;
            c.table_size = sc.table_size;
            c
        })
        .collect()
}

/// Steady-state heap allocations per simulated query for `kind`
/// point-select, isolated from setup costs by differencing two runs that
/// differ only in window length (setup allocations are identical, so
/// the difference is purely the measurement loop).
fn hot_path_allocs_per_query(kind: PoolKind, sc: &Scale) -> f64 {
    let mk = |window: SimTime| {
        let mut c = PoolingConfig::standard(kind, SysbenchKind::PointSelect, 1);
        c.duration = window;
        c.table_size = sc.table_size;
        c
    };
    let run = |cfg: &PoolingConfig| {
        let a0 = profile::alloc_count();
        let r = run_pooling(cfg);
        let allocs = profile::alloc_count().saturating_sub(a0);
        let queries = r.metrics.qps * r.metrics.window.as_secs_f64();
        (allocs as f64, queries)
    };
    let (a_short, q_short) = run(&mk(sc.window));
    let (a_long, q_long) = run(&mk(SimTime::from_nanos(sc.window.as_nanos() * 3)));
    ((a_long - a_short) / (q_long - q_short).max(1.0)).max(0.0)
}

/// Simulated-ns latency attribution for a single-instance run of
/// `kind`, recorded by `simkit::trace` (observation-only: the run
/// result is bit-identical to an untraced run).
fn attribution_for(kind: PoolKind, sc: &Scale) -> QueryBreakdown {
    let mut c = PoolingConfig::standard(kind, SysbenchKind::PointSelect, 1);
    c.duration = sc.window;
    c.table_size = sc.table_size;
    trace::reset();
    trace::enable_attribution(true);
    let r = run_pooling(&c);
    trace::enable_attribution(false);
    trace::reset();
    // Without the `trace` feature the hooks compile to nothing and no
    // attribution is recorded; report an (honest) all-zero breakdown.
    r.attribution.unwrap_or_default()
}

/// Validate an emitted Chrome `trace_event` document: structurally
/// well-formed JSON (balanced delimiters outside strings) and, for each
/// (pid, tid) track, complete events sorted by start with no overlap —
/// the contract Perfetto's importer expects.
fn validate_chrome_trace(doc: &str) -> usize {
    // Structural scan; also capture each event object (depth-2 `{...}`,
    // nested `args` objects included).
    let (mut obj, mut arr) = (0i64, 0i64);
    let (mut in_str, mut esc) = (false, false);
    let mut start = None;
    let mut events: Vec<String> = Vec::new();
    for (i, c) in doc.char_indices() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                obj += 1;
                if obj == 2 {
                    start = Some(i);
                }
            }
            '}' => {
                obj -= 1;
                assert!(obj >= 0, "unbalanced braces in trace JSON");
                if obj == 1 {
                    events.push(doc[start.take().unwrap()..=i].to_string());
                }
            }
            '[' => arr += 1,
            ']' => {
                arr -= 1;
                assert!(arr >= 0, "unbalanced brackets in trace JSON");
            }
            _ => {}
        }
    }
    assert!(
        !in_str && obj == 0 && arr == 0,
        "trace JSON not well-formed (unterminated string or delimiter)"
    );

    // Our emitter writes fields as `"key": value`.
    let fnum = |e: &str, key: &str| -> f64 {
        let pat = format!("\"{key}\": ");
        let s = e
            .find(&pat)
            .unwrap_or_else(|| panic!("missing {key} in {e}"))
            + pat.len();
        let rest = &e[s..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(rest.len());
        rest[..end].parse().unwrap()
    };
    let mut tracks: std::collections::HashMap<(u64, u64), Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    let mut complete = 0usize;
    for e in &events {
        if !e.contains("\"ph\": \"X\"") {
            continue;
        }
        complete += 1;
        let (pid, tid) = (fnum(e, "pid") as u64, fnum(e, "tid") as u64);
        tracks
            .entry((pid, tid))
            .or_default()
            .push((fnum(e, "ts"), fnum(e, "dur")));
    }
    for ((pid, tid), spans) in &tracks {
        let mut prev_end = f64::NEG_INFINITY;
        let mut prev_ts = f64::NEG_INFINITY;
        for &(ts, dur) in spans {
            assert!(
                ts >= prev_ts,
                "track pid={pid} tid={tid} not sorted by start time"
            );
            assert!(
                ts + 1e-6 >= prev_end,
                "track pid={pid} tid={tid} has overlapping spans ({ts} < {prev_end})"
            );
            prev_ts = ts;
            prev_end = prev_end.max(ts + dur);
        }
    }
    complete
}

/// Pull a top-level numeric field out of a previously written
/// `BENCH_host_perf` JSON document (enough of a parser for our own
/// artifact format).
fn extract_num(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = doc.find(&pat)? + pat.len();
    let rest = doc[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let smoke = std::env::var("HOST_PERF_SMOKE").is_ok_and(|v| v == "1");
    let sc = scale(smoke);
    let threads_available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads_used = host_threads();
    let configs = sweep_configs(&sc);
    println!(
        "host_perf{}: {} configs, {} host threads used ({} available)",
        if smoke { " [smoke]" } else { "" },
        configs.len(),
        threads_used,
        threads_available,
    );

    // Warm up with one full (untimed) sweep pass so the serial and
    // parallel timings below see the same allocator / page-cache state.
    // A partial warm-up makes the first timed pass look slower for
    // reasons that have nothing to do with threading.
    let _ = run_sweep_threads(&configs, 1, run_pooling);

    // Timed passes. Wall time on a shared box is noisy (scheduler,
    // frequency scaling, neighbours), so each sweep is timed over
    // several passes and the best one is reported — the standard way to
    // measure the cost of the *code* rather than of the interference.
    // The simulation results themselves are bit-identical across passes
    // (asserted below), so the extra passes only refine the clock.
    let passes = if smoke { 1 } else { 3 };

    // Serial passes, one config at a time so each gets a wall time.
    let mut serial = Vec::new();
    let mut wall_secs = Vec::new();
    let mut serial_secs = f64::INFINITY;
    for _ in 0..passes {
        let t0 = Instant::now();
        let mut pass = Vec::with_capacity(configs.len());
        let mut walls = Vec::with_capacity(configs.len());
        for c in &configs {
            let tc = Instant::now();
            pass.push(run_pooling(c));
            walls.push(tc.elapsed().as_secs_f64());
        }
        let secs = t0.elapsed().as_secs_f64();
        if !serial.is_empty() {
            assert_eq!(serial, pass, "serial passes disagree: nondeterminism");
        }
        if secs < serial_secs {
            serial_secs = secs;
            wall_secs = walls;
        }
        if serial.is_empty() {
            serial = pass;
        }
    }

    let mut parallel = Vec::new();
    let mut parallel_secs = f64::INFINITY;
    for _ in 0..passes {
        let t1 = Instant::now();
        let pass = run_sweep_threads(&configs, threads_used, run_pooling);
        parallel_secs = parallel_secs.min(t1.elapsed().as_secs_f64());
        parallel = pass;
    }

    // Parallelism is across runs, never within one virtual timeline:
    // the results must be bit-identical.
    assert_eq!(
        serial, parallel,
        "parallel sweep changed simulation results"
    );

    let sim_queries: f64 = serial
        .iter()
        .map(|r| r.metrics.qps * r.metrics.window.as_secs_f64())
        .sum();
    let serial_qps = sim_queries / serial_secs;
    let speedup = serial_secs / parallel_secs;
    println!("serial:   {serial_secs:.2} s  ({serial_qps:.0} simulated queries/s)");
    println!(
        "parallel: {parallel_secs:.2} s  ({:.0} simulated queries/s)",
        sim_queries / parallel_secs
    );
    println!("speedup:  {speedup:.2}x on {threads_used} threads (results bit-identical)");

    // ---- intra-config parallel stepping --------------------------------
    // The sweep above parallelises across independent runs. The phased
    // sharing engine also parallelises *within* one run: nodes step
    // concurrently between virtual-time barriers and cross-node effects
    // commit at the barrier in fixed node order. Time the largest single
    // config serial (host_threads = 1) against parallel stepping, after
    // asserting the simulation results are bit-identical across worker
    // counts — the determinism contract the barrier protocol guarantees.
    let mut big = SharingConfig::standard(SharingSystem::Cxl, if smoke { 4 } else { 12 });
    if smoke {
        big.layout.rows_per_group = 1_000;
        big.duration = SimTime::from_millis(20);
    }
    let gen = point_update_gen(big.layout, 40);
    let run_with = |threads: usize| {
        let mut c = big.clone();
        c.host_threads = threads;
        run_sharing(&c, &gen)
    };
    let reference = run_with(1);
    for workers in [2usize, 4] {
        assert_eq!(
            reference,
            run_with(workers),
            "intra-config results diverged at {workers} workers"
        );
    }
    // Parallel stepping only helps with real cores; still spawn at least
    // two workers so the measurement always exercises the thread pool.
    let single_threads = threads_used.max(2);
    let mut single_serial_secs = f64::INFINITY;
    let mut single_parallel_secs = f64::INFINITY;
    for _ in 0..passes {
        let t = Instant::now();
        let _ = run_with(1);
        single_serial_secs = single_serial_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let _ = run_with(single_threads);
        single_parallel_secs = single_parallel_secs.min(t.elapsed().as_secs_f64());
    }
    let single_speedup = single_serial_secs / single_parallel_secs;
    // On a one-core host the worker pool can only interleave, so the
    // "speedup" measures scheduling overhead, not the barrier protocol.
    // Keep reporting it (the determinism assertions above still bind)
    // but mark it informational instead of a performance claim.
    let single_speedup_informational = threads_available == 1;
    println!(
        "single config (CXL sharing, {} nodes): serial {single_serial_secs:.2} s, \
         parallel {single_parallel_secs:.2} s on {single_threads} workers -> \
         {single_speedup:.2}x (bit-identical across 1/2/4 workers){}",
        big.nodes,
        if single_speedup_informational {
            " [informational: 1 host thread available]"
        } else {
            ""
        }
    );

    // Steady-state allocations per query on the two disaggregated
    // designs; ~0 after the zero-allocation page-path work.
    let allocs_rdma = hot_path_allocs_per_query(PoolKind::TieredRdma, &sc);
    let allocs_cxl = hot_path_allocs_per_query(PoolKind::Cxl, &sc);
    println!("hot-path allocs/query: tiered_rdma {allocs_rdma:.4}, cxl {allocs_cxl:.4}");

    // Where do the simulated nanoseconds go? One single-instance run
    // per design with latency attribution enabled.
    let attr_rdma = attribution_for(PoolKind::TieredRdma, &sc);
    let attr_cxl = attribution_for(PoolKind::Cxl, &sc);
    println!("latency attribution (1 instance point-select, % of simulated ns):");
    println!("  {:<10} {:>12} {:>12}", "lane", "tiered_rdma", "cxl");
    let pct = |b: &QueryBreakdown, l: Lane| {
        let t = b.total_ns();
        if t == 0 {
            0.0
        } else {
            100.0 * b.lane(l) as f64 / t as f64
        }
    };
    for l in Lane::ALL {
        println!(
            "  {:<10} {:>11.1}% {:>11.1}%",
            l.name(),
            pct(&attr_rdma, l),
            pct(&attr_cxl, l)
        );
    }

    // Profiled pass: one representative config per design, single
    // thread, profiler on. Not used for any timing number above — the
    // guards cost a few ns each — only for the breakdown.
    let profiled: Vec<PoolingConfig> = [PoolKind::TieredRdma, PoolKind::Cxl]
        .into_iter()
        .map(|kind| {
            let mut c =
                PoolingConfig::standard(kind, SysbenchKind::PointSelect, sc.max_instances.min(4));
            c.duration = sc.window;
            c.table_size = sc.table_size;
            c
        })
        .collect();
    profile::reset();
    profile::enable(true);
    for c in &profiled {
        let _ = run_pooling(c);
    }
    profile::enable(false);
    let snap = profile::snapshot();

    println!("profile breakdown (serial, RDMA + CXL point-select):");
    println!(
        "  {:<12} {:>12} {:>12} {:>14}",
        "subsys", "calls", "self_ms", "self_allocs"
    );
    for s in profile::Subsys::ALL {
        let row = snap.row(s);
        println!(
            "  {:<12} {:>12} {:>12.3} {:>14}",
            s.name(),
            row.calls,
            row.self_ns as f64 / 1e6,
            row.self_allocs
        );
    }
    println!(
        "  {:<12} {:>12} {:>12.3} {:>14}",
        "total",
        "",
        snap.total_self_ns() as f64 / 1e6,
        snap.total_self_allocs()
    );
    if snap.row(profile::Subsys::Btree).calls == 0 {
        println!("  (empty: build without the simkit `profile` feature)");
    }

    // Per-policy bufferpool cost: the profiled RDMA config re-run under
    // each eviction policy, isolating the policy's hot-path price as
    // bufferpool self-ns per call. CLOCK's touch is a refbit store where
    // LRU's is a doubly-linked-list splice, so CLOCK should not cost
    // more per call; call counts are deterministic, so only the ns
    // column carries wall-clock noise (best of `passes` is kept).
    let mut policy_rows: Vec<(PolicyKind, u64, u64)> = Vec::new();
    for kind in PolicyKind::ALL {
        let mut c = profiled[0].clone();
        c.policy = kind;
        let mut best: Option<(u64, u64)> = None;
        for _ in 0..passes {
            profile::reset();
            profile::enable(true);
            let _ = run_pooling(&c);
            profile::enable(false);
            let row = profile::snapshot().row(profile::Subsys::BufferPool);
            if let Some((calls, _)) = best {
                assert_eq!(
                    calls, row.calls,
                    "bufferpool call count must be deterministic"
                );
            }
            best = Some(match best {
                Some((calls, ns)) => (calls, ns.min(row.self_ns)),
                None => (row.calls, row.self_ns),
            });
        }
        let (calls, self_ns) = best.unwrap();
        policy_rows.push((kind, calls, self_ns));
    }
    println!("bufferpool self-ns/call by eviction policy (RDMA point-select):");
    for &(kind, calls, self_ns) in &policy_rows {
        println!(
            "  {:<6} {:>12} calls {:>10.1} ns/call",
            kind.name(),
            calls,
            if calls > 0 {
                self_ns as f64 / calls as f64
            } else {
                0.0
            }
        );
    }

    // Compare against the committed pre-optimization baseline, if any.
    let baseline_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_host_perf.baseline.json");
    let baseline_qps = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|doc| extract_num(&doc, "serial_sim_queries_per_sec"));
    if let Some(b) = baseline_qps {
        if !smoke {
            println!(
                "baseline: {b:.0} simulated queries/s serial -> {:.2}x vs baseline",
                serial_qps / b
            );
        }
    }

    if smoke {
        // Perf gate: with tracing disabled (the default above) the
        // disabled-path guards must keep the hot path allocation-free.
        // The telemetry layer rides the same contract: the pooling hot
        // path carries no probes, and the `--no-default-features` CI
        // smoke re-runs this assertion with telemetry compiled out, so
        // the ~0 allocs/query pin in BENCH_host_perf.json holds in
        // both build configurations.
        assert!(
            allocs_rdma < 0.5 && allocs_cxl < 0.5,
            "hot-path allocs/query regressed with tracing disabled: \
             tiered_rdma {allocs_rdma:.4}, cxl {allocs_cxl:.4}"
        );
        // And the profiler's own ledger must agree: the bufferpool
        // subsystem performs zero self-allocations over an entire run
        // (setup included — every growable container is pre-sized).
        let bp_row = snap.row(profile::Subsys::BufferPool);
        assert!(
            bp_row.calls == 0 || bp_row.self_allocs == 0,
            "bufferpool hot path allocated {} times",
            bp_row.self_allocs
        );

        // Traced smoke run: record spans on one config, export Chrome
        // trace JSON, and validate it (well-formed, per-track
        // non-overlapping) — and confirm tracing never perturbs the
        // simulation itself.
        trace::reset();
        trace::enable_spans(true);
        trace::enable_attribution(true);
        let traced = run_pooling(&configs[0]);
        trace::enable_spans(false);
        trace::enable_attribution(false);
        let events = trace::take_events();
        // Without the `trace` feature the hooks compile to nothing and
        // the stream is empty; the bit-identity check below still binds.
        if cfg!(feature = "trace") {
            assert!(!events.is_empty(), "traced smoke run recorded no spans");
        }
        let doc = trace::chrome_trace_json(&events);
        trace::reset();
        assert_eq!(
            traced.metrics, serial[0].metrics,
            "tracing changed simulation results"
        );
        let complete = validate_chrome_trace(&doc);
        if cfg!(feature = "trace") {
            assert!(complete > 0, "trace JSON contains no complete events");
        }
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/host_perf_smoke_trace.json");
        std::fs::write(&out, &doc).expect("write smoke trace");
        println!(
            "smoke trace: {complete} spans validated -> {}",
            out.display()
        );
        println!("smoke mode: skipping BENCH_host_perf.json");
        return;
    }

    let runs: Vec<String> = serial
        .iter()
        .zip(configs.iter())
        .zip(wall_secs.iter())
        .map(|((r, c), w)| {
            json::Obj::new()
                .str("kind", &format!("{:?}", c.kind))
                .int("instances", c.instances as u64)
                .num("qps", r.metrics.qps)
                .num("avg_latency_us", r.metrics.avg_latency_us)
                .num("wall_secs", *w)
                .build()
        })
        .collect();
    let breakdown: Vec<String> = profile::Subsys::ALL
        .iter()
        .map(|&s| {
            let row = snap.row(s);
            json::Obj::new()
                .str("subsys", s.name())
                .int("calls", row.calls)
                .int("self_ns", row.self_ns)
                .int("self_allocs", row.self_allocs)
                .build()
        })
        .collect();
    let policy_profile: Vec<String> = policy_rows
        .iter()
        .map(|&(kind, calls, self_ns)| {
            json::Obj::new()
                .str("policy", kind.name())
                .int("bp_calls", calls)
                .int("bp_self_ns", self_ns)
                .num(
                    "bp_self_ns_per_call",
                    if calls > 0 {
                        self_ns as f64 / calls as f64
                    } else {
                        0.0
                    },
                )
                .build()
        })
        .collect();
    let attribution: Vec<String> = [("tiered_rdma", &attr_rdma), ("cxl", &attr_cxl)]
        .iter()
        .map(|(design, b)| {
            let total = b.total_ns();
            let lanes: Vec<String> = Lane::ALL
                .iter()
                .map(|&l| {
                    json::Obj::new()
                        .str("lane", l.name())
                        .int("ns", b.lane(l))
                        .num(
                            "fraction",
                            if total > 0 {
                                b.lane(l) as f64 / total as f64
                            } else {
                                0.0
                            },
                        )
                        .build()
                })
                .collect();
            json::Obj::new()
                .str("design", design)
                .int("total_ns", total)
                .arr("lanes", &lanes)
                .build()
        })
        .collect();
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut doc = json::Obj::new()
        .str("bench", "host_perf")
        .str(
            "sweep",
            "fig7-style pooling point-select, RDMA vs CXL, 1-8 instances, 100 ms windows",
        )
        .int("generated_unix", unix_secs)
        .int("host_threads_available", threads_available as u64)
        .int("host_threads_used", threads_used as u64)
        .int("configs", configs.len() as u64)
        .int("timing_passes", passes as u64)
        .num("serial_secs", serial_secs)
        .num("parallel_secs", parallel_secs)
        .num("speedup", speedup)
        .num("simulated_queries", sim_queries)
        .num("serial_sim_queries_per_sec", serial_qps)
        .num("parallel_sim_queries_per_sec", sim_queries / parallel_secs)
        .raw("results_bit_identical", "true")
        .int("single_config_nodes", big.nodes as u64)
        .int("single_config_workers", single_threads as u64)
        .num("single_config_serial_secs", single_serial_secs)
        .num("single_config_parallel_secs", single_parallel_secs)
        .num("single_config_speedup", single_speedup)
        .raw(
            "single_config_speedup_informational",
            if single_speedup_informational {
                "true"
            } else {
                "false"
            },
        )
        .raw("single_config_results_bit_identical", "true")
        .num("hot_path_allocs_per_query_tiered_rdma", allocs_rdma)
        .num("hot_path_allocs_per_query_cxl", allocs_cxl);
    if let Some(b) = baseline_qps {
        doc = doc
            .num("baseline_serial_sim_queries_per_sec", b)
            .num("speedup_vs_baseline", serial_qps / b);
    }
    let doc = doc
        .arr("profile_breakdown", &breakdown)
        .arr("policy_profile", &policy_profile)
        .arr("attribution", &attribution)
        .arr("runs", &runs)
        .build_pretty();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_host_perf.json");
    std::fs::write(&path, doc + "\n").expect("write BENCH_host_perf.json");
    println!("wrote {}", path.display());
}
