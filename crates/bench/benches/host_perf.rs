//! host_perf: how fast does the simulator itself run, and how much does
//! the parallel sweep runner buy?
//!
//! Times a standard fig7-style pooling sweep (RDMA vs CXL point-select
//! across instance counts) twice in host wall-clock — once on a single
//! thread, once across [`host_threads`] workers — verifies the two
//! produce bit-identical simulation results, and writes the numbers to
//! `BENCH_host_perf.json` at the repository root.
//!
//! Regenerate with:
//! `cargo bench -p bench --bench host_perf`

use bench::sweep::json;
use bench::{host_threads, run_sweep_threads};
use simkit::SimTime;
use std::time::Instant;
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

fn sweep_configs() -> Vec<PoolingConfig> {
    (1..=8usize)
        .flat_map(|n| {
            [
                PoolingConfig::standard(PoolKind::TieredRdma, SysbenchKind::PointSelect, n),
                PoolingConfig::standard(PoolKind::Cxl, SysbenchKind::PointSelect, n),
            ]
        })
        .map(|mut c| {
            c.duration = SimTime::from_millis(100);
            c
        })
        .collect()
}

fn main() {
    let threads = host_threads();
    let configs = sweep_configs();
    println!(
        "host_perf: {} configs, {} host threads",
        configs.len(),
        threads
    );

    // Warm up with one full (untimed) sweep pass so the serial and
    // parallel timings below see the same allocator / page-cache state.
    // A partial warm-up makes the first timed pass look slower for
    // reasons that have nothing to do with threading.
    let _ = run_sweep_threads(&configs, 1, run_pooling);

    let t0 = Instant::now();
    let serial = run_sweep_threads(&configs, 1, run_pooling);
    let serial_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = run_sweep_threads(&configs, threads, run_pooling);
    let parallel_secs = t1.elapsed().as_secs_f64();

    // Parallelism is across runs, never within one virtual timeline:
    // the results must be bit-identical.
    assert_eq!(
        serial, parallel,
        "parallel sweep changed simulation results"
    );

    let sim_queries: f64 = serial
        .iter()
        .map(|r| r.metrics.qps * r.metrics.window.as_secs_f64())
        .sum();
    let speedup = serial_secs / parallel_secs;
    println!(
        "serial:   {serial_secs:.2} s  ({:.0} simulated queries/s)",
        sim_queries / serial_secs
    );
    println!(
        "parallel: {parallel_secs:.2} s  ({:.0} simulated queries/s)",
        sim_queries / parallel_secs
    );
    println!("speedup:  {speedup:.2}x on {threads} threads (results bit-identical)");

    let runs: Vec<String> = serial
        .iter()
        .zip(configs.iter())
        .map(|(r, c)| {
            json::Obj::new()
                .str("kind", &format!("{:?}", c.kind))
                .int("instances", c.instances as u64)
                .num("qps", r.metrics.qps)
                .num("avg_latency_us", r.metrics.avg_latency_us)
                .build()
        })
        .collect();
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let doc = json::Obj::new()
        .str("bench", "host_perf")
        .str(
            "sweep",
            "fig7-style pooling point-select, RDMA vs CXL, 1-8 instances, 100 ms windows",
        )
        .int("generated_unix", unix_secs)
        .int("host_threads", threads as u64)
        .int("configs", configs.len() as u64)
        .num("serial_secs", serial_secs)
        .num("parallel_secs", parallel_secs)
        .num("speedup", speedup)
        .num("simulated_queries", sim_queries)
        .num("serial_sim_queries_per_sec", sim_queries / serial_secs)
        .num("parallel_sim_queries_per_sec", sim_queries / parallel_secs)
        .raw("results_bit_identical", "true")
        .arr("runs", &runs)
        .build_pretty();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_host_perf.json");
    std::fs::write(&path, doc + "\n").expect("write BENCH_host_perf.json");
    println!("wrote {}", path.display());
}
