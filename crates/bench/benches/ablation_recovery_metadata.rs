//! Ablation: what durable metadata in CXL is worth to recovery.
//!
//! PolarRecv trusts a block when its persisted `lock_state` is clear and
//! its `lsn` is covered by durable redo. Without that metadata, every
//! in-use page must be rebuilt from storage + redo even though its data
//! survived in CXL — this bench measures that gap (§3.2's design
//! rationale).

use bench::{banner, footer};
use workloads::recovery_harness::{run_recovery, RecoveryConfig, Scheme};
use workloads::SysbenchKind;

fn main() {
    banner(
        "Ablation A2",
        "PolarRecv with vs without durable block metadata",
        "storing {lock_state, lsn} in CXL is what lets recovery trust surviving pages instead of replaying everything",
    );
    println!(
        "{:<18} {:>14} {:>16} {:>14} {:>14}",
        "scheme", "workload", "recovery (s)", "pages rebuilt", "records"
    );
    for wl in [SysbenchKind::ReadWrite, SysbenchKind::WriteOnly] {
        for scheme in [Scheme::PolarRecv, Scheme::PolarRecvNoMeta] {
            let r = run_recovery(&RecoveryConfig::standard(scheme, wl));
            println!(
                "{:<18} {:>14} {:>16.4} {:>14} {:>14}",
                r.scheme,
                format!("{wl:?}"),
                r.recovery_secs,
                r.summary.pages_rebuilt,
                r.summary.records_applied
            );
        }
    }
    footer(
        "without metadata the 'instant' recovery degenerates to a full rebuild of the resident set",
    );
}
