//! Figure 13: breakdown — RDMA-based sharing with LBP sizes from 10 %
//! to 100 % of each node's accessed dataset vs PolarCXLMem, sysbench
//! point-update, 8 nodes.

use bench::{banner, footer, kqps, run_sweep};
use workloads::sharing::{
    point_update_gen, run_sharing, SharingConfig, SharingResult, SharingSystem,
};

const FRACS: [f64; 5] = [0.10, 0.30, 0.50, 0.70, 1.00];
const SHARED: [u32; 5] = [20, 40, 60, 80, 100];

fn run_point(&(pct, system): &(u32, SharingSystem)) -> SharingResult {
    let cfg = SharingConfig::standard(system, 8);
    run_sharing(&cfg, point_update_gen(cfg.layout, pct))
}

fn main() {
    banner(
        "Figure 13",
        "Breakdown: RDMA LBP size sweep vs PolarCXLMem (point-update, 8 nodes)",
        "at 20% shared CXL = 2.14x RDMA-LBP10; LBP size stops mattering as sharing grows; CXL wins even vs LBP-100",
    );
    print!("{:>7} |", "shared");
    for f in FRACS {
        print!(" {:>10}", format!("LBP-{:.0}%", f * 100.0));
    }
    println!(" {:>12}", "PolarCXLMem");
    let configs: Vec<(u32, SharingSystem)> = SHARED
        .iter()
        .flat_map(|&pct| {
            FRACS
                .iter()
                .map(move |&f| (pct, SharingSystem::Rdma { lbp_fraction: f }))
                .chain(std::iter::once((pct, SharingSystem::Cxl)))
        })
        .collect();
    let results = run_sweep(&configs, run_point);
    for (row, &pct) in results.chunks(FRACS.len() + 1).zip(SHARED.iter()) {
        print!("{:>6}% |", pct);
        for r in &row[..FRACS.len()] {
            print!(" {:>10}", kqps(r.metrics.qps));
        }
        println!(" {:>12}", kqps(row[FRACS.len()].metrics.qps));
    }
    footer(
        "all columns are K-QPS; growing the LBP buys RDMA little once synchronization dominates",
    );
}
