//! Figure 13: breakdown — RDMA-based sharing with LBP sizes from 10 %
//! to 100 % of each node's accessed dataset vs PolarCXLMem, sysbench
//! point-update, 8 nodes.

use bench::{banner, footer, kqps};
use workloads::sharing::{point_update_gen, run_sharing, SharingConfig, SharingSystem};

fn main() {
    banner(
        "Figure 13",
        "Breakdown: RDMA LBP size sweep vs PolarCXLMem (point-update, 8 nodes)",
        "at 20% shared CXL = 2.14x RDMA-LBP10; LBP size stops mattering as sharing grows; CXL wins even vs LBP-100",
    );
    let fracs = [0.10f64, 0.30, 0.50, 0.70, 1.00];
    print!("{:>7} |", "shared");
    for f in fracs {
        print!(" {:>10}", format!("LBP-{:.0}%", f * 100.0));
    }
    println!(" {:>12}", "PolarCXLMem");
    for &pct in &[20u32, 40, 60, 80, 100] {
        print!("{:>6}% |", pct);
        for &f in &fracs {
            let cfg = SharingConfig::standard(SharingSystem::Rdma { lbp_fraction: f }, 8);
            let r = run_sharing(&cfg, point_update_gen(cfg.layout, pct));
            print!(" {:>10}", kqps(r.metrics.qps));
        }
        let ccfg = SharingConfig::standard(SharingSystem::Cxl, 8);
        let c = run_sharing(&ccfg, point_update_gen(ccfg.layout, pct));
        println!(" {:>12}", kqps(c.metrics.qps));
    }
    footer("all columns are K-QPS; growing the LBP buys RDMA little once synchronization dominates");
}
