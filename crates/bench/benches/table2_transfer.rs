//! Table 2: data-transfer latency of RDMA vs CXL for 64 B – 16 KB,
//! reads (remote → local) and writes (local → remote).

use bench::{banner, footer};
use memsim::{CxlPool, NodeId, RdmaPool};
use simkit::SimTime;

fn main() {
    banner(
        "Table 2",
        "Data transfer latency of RDMA vs CXL",
        "64B: RDMA 4.48/4.55 us vs CXL 0.78/0.75 us; 16KB: RDMA 6.12/7.13 us vs CXL 1.68/2.46 us",
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "size", "RDMA wr (us)", "CXL wr (us)", "RDMA rd (us)", "CXL rd (us)"
    );
    for &size in &[64usize, 512, 1024, 4096, 16384] {
        // Fresh fabrics per size so queues carry no backlog between rows.
        let mut rdma = RdmaPool::new(1 << 20, 1);
        let mut cxl = CxlPool::single_host(1 << 20, 1, 64, false); // tiny cache: all misses
        let data = vec![0xA5u8; size];
        let mut buf = vec![0u8; size];

        let rw = rdma.write(0, 0, &data, SimTime::ZERO).end.as_nanos() as f64 / 1e3;
        let rr = rdma.read(0, 0, &mut buf, SimTime::ZERO).end.as_nanos() as f64 / 1e3;
        let cw = cxl
            .write_uncached(NodeId(0), 0, &data, SimTime::ZERO)
            .end
            .as_nanos() as f64
            / 1e3;
        let cr = cxl
            .read_uncached(NodeId(0), 0, &mut buf, SimTime::ZERO)
            .end
            .as_nanos() as f64
            / 1e3;
        let label = if size >= 1024 {
            format!("{}KB", size / 1024)
        } else {
            format!("{size}B")
        };
        println!("{label:>8} {rw:>14.2} {cw:>14.2} {rr:>14.2} {cr:>14.2}");
    }
    footer("CXL wins ~6x at 64B; its lead narrows as size grows (store-buffer-depth-limited streaming), as in the paper");
}
