//! Figure 9: pooling comparison under sysbench read-write
//! (48 threads/instance) at 2/4/8/12 instances.

use bench::{banner, footer, kqps};
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

fn main() {
    banner(
        "Figure 9",
        "Pooling: read-write, RDMA vs PolarCXLMem",
        "RDMA saturates at 8 instances; PolarCXLMem keeps scaling; RDMA bandwidth ~40% above CXL at 1 instance",
    );
    println!(
        "{:>4} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
        "n", "RDMA K-QPS", "CXL K-QPS", "RDMA lat us", "CXL lat us", "RDMA GB/s", "CXL GB/s"
    );
    for &n in &[1usize, 2, 4, 8, 12] {
        let r = run_pooling(&PoolingConfig::standard(
            PoolKind::TieredRdma,
            SysbenchKind::ReadWrite,
            n,
        ));
        let c = run_pooling(&PoolingConfig::standard(
            PoolKind::Cxl,
            SysbenchKind::ReadWrite,
            n,
        ));
        println!(
            "{:>4} | {:>12} {:>12} | {:>12.1} {:>12.1} | {:>10.2} {:>10.2}",
            n,
            kqps(r.metrics.qps),
            kqps(c.metrics.qps),
            r.metrics.avg_latency_us,
            c.metrics.avg_latency_us,
            r.metrics.interconnect_gbps,
            c.metrics.interconnect_gbps
        );
    }
    footer("writes amplify too: a dirty eviction ships a whole page over the NIC");
}
