//! Figure 9: pooling comparison under sysbench read-write
//! (48 threads/instance) at 2/4/8/12 instances.

use bench::{banner, footer, kqps, run_sweep};
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

const POINTS: [usize; 5] = [1, 2, 4, 8, 12];

fn main() {
    banner(
        "Figure 9",
        "Pooling: read-write, RDMA vs PolarCXLMem",
        "RDMA saturates at 8 instances; PolarCXLMem keeps scaling; RDMA bandwidth ~40% above CXL at 1 instance",
    );
    println!(
        "{:>4} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
        "n", "RDMA K-QPS", "CXL K-QPS", "RDMA lat us", "CXL lat us", "RDMA GB/s", "CXL GB/s"
    );
    let configs: Vec<PoolingConfig> = POINTS
        .iter()
        .flat_map(|&n| {
            [
                PoolingConfig::standard(PoolKind::TieredRdma, SysbenchKind::ReadWrite, n),
                PoolingConfig::standard(PoolKind::Cxl, SysbenchKind::ReadWrite, n),
            ]
        })
        .collect();
    let results = run_sweep(&configs, run_pooling);
    for (pair, &n) in results.chunks(2).zip(POINTS.iter()) {
        let (r, c) = (&pair[0].metrics, &pair[1].metrics);
        println!(
            "{:>4} | {:>12} {:>12} | {:>12.1} {:>12.1} | {:>10.2} {:>10.2}",
            n,
            kqps(r.qps),
            kqps(c.qps),
            r.avg_latency_us,
            c.avg_latency_us,
            r.interconnect_gbps,
            c.interconnect_gbps
        );
    }
    footer("writes amplify too: a dirty eviction ships a whole page over the NIC");
}
