//! Figure 11: multi-primary data sharing, sysbench point-update on an
//! 8-node cluster — throughput, improvement over RDMA, and latency as
//! the shared-data percentage sweeps 0–100 %.

use bench::{banner, footer, improvement_pct, kqps};
use workloads::sharing::{point_update_gen, run_sharing, SharingConfig, SharingSystem};

fn main() {
    banner(
        "Figure 11",
        "Sharing: point-update, 8 nodes",
        "PolarCXLMem +33% at 0% shared, peaking +62% at 40%, still +27% at 100%; latency follows",
    );
    println!(
        "{:>7} | {:>12} {:>12} {:>8} | {:>12} {:>12}",
        "shared", "RDMA K-QPS", "CXL K-QPS", "improve", "RDMA lat us", "CXL lat us"
    );
    for &pct in &[0u32, 20, 40, 60, 80, 100] {
        let rcfg = SharingConfig::standard(SharingSystem::Rdma { lbp_fraction: 0.3 }, 8);
        let ccfg = SharingConfig::standard(SharingSystem::Cxl, 8);
        let r = run_sharing(&rcfg, point_update_gen(rcfg.layout, pct));
        let c = run_sharing(&ccfg, point_update_gen(ccfg.layout, pct));
        println!(
            "{:>6}% | {:>12} {:>12} {:>7.0}% | {:>12.1} {:>12.1}",
            pct,
            kqps(r.metrics.qps),
            kqps(c.metrics.qps),
            improvement_pct(c.metrics.qps, r.metrics.qps),
            r.metrics.avg_latency_us,
            c.metrics.avg_latency_us
        );
    }
    footer("RDMA flushes whole pages inside the lock hold; CXL flushes only modified lines and stores a flag");
}
