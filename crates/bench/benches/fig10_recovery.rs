//! Figure 10: recovery performance — throughput timeline around a crash
//! for vanilla / RDMA-based / PolarRecv under read-only, read-write and
//! write-only workloads, plus the recovery and warm-up times the paper
//! quotes.

use bench::{banner, footer};
use workloads::recovery_harness::{run_recovery, RecoveryConfig, Scheme};
use workloads::SysbenchKind;

fn main() {
    banner(
        "Figure 10",
        "Recovery performance comparison",
        "read-write recovery: vanilla 110s, RDMA 33s, PolarRecv 8s; warm-up after read-only crash: 30s/10s/~0",
    );
    for wl in [
        SysbenchKind::ReadOnly,
        SysbenchKind::ReadWrite,
        SysbenchKind::WriteOnly,
    ] {
        println!("[{wl:?}] (crash at t=2s of 6s; 100ms buckets)");
        println!(
            "{:<11} {:>12} {:>14} {:>12} {:>14} {:>12}",
            "scheme", "pre K-QPS", "recovery (s)", "warmup (s)", "pages rebuilt", "log bytes"
        );
        let mut curves = Vec::new();
        for scheme in [Scheme::Vanilla, Scheme::RdmaBased, Scheme::PolarRecv] {
            let r = run_recovery(&RecoveryConfig::standard(scheme, wl));
            println!(
                "{:<11} {:>12.1} {:>14.3} {:>12.3} {:>14} {:>12}",
                r.scheme,
                r.pre_crash_qps / 1e3,
                r.recovery_secs,
                if r.warmup_secs.is_finite() {
                    r.warmup_secs
                } else {
                    -1.0
                },
                r.summary.pages_rebuilt,
                r.summary.log_bytes
            );
            curves.push((r.scheme, r.timeline));
        }
        // Timeline around the crash (t = 1.5s .. 4.0s, 100 ms buckets):
        // the dip and ramp are visible at this resolution.
        println!("  timeline around crash (K-QPS per 100ms, t=1.5s..4.0s):");
        for (name, tl) in &curves {
            let seg: Vec<String> = tl
                .iter()
                .skip(15)
                .take(25)
                .map(|p| format!("{:>4.0}", p.qps / 1e3))
                .collect();
            println!("  {:<11} {}", name, seg.join(" "));
        }
        println!();
    }
    footer("PolarRecv restores a warm pool in milliseconds; replay-based schemes scan the redo tail and re-warm");
}
