//! Figure 7: PolarCXLMem vs RDMA-based disaggregated memory, sysbench
//! point-select — total throughput, average latency, and RDMA/CXL
//! bandwidth as instances scale 1–12 on one host.

use bench::{banner, footer, kqps};
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

fn main() {
    banner(
        "Figure 7",
        "Pooling: point-select, RDMA vs PolarCXLMem",
        "RDMA saturates at 3 instances (~1.1M QPS, 11 GB/s); PolarCXLMem scales to 3.6M QPS at 12 with stable latency",
    );
    println!(
        "{:>4} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
        "n", "RDMA K-QPS", "CXL K-QPS", "RDMA lat us", "CXL lat us", "RDMA GB/s", "CXL GB/s"
    );
    for n in 1..=12usize {
        let r = run_pooling(&PoolingConfig::standard(
            PoolKind::TieredRdma,
            SysbenchKind::PointSelect,
            n,
        ));
        let c = run_pooling(&PoolingConfig::standard(
            PoolKind::Cxl,
            SysbenchKind::PointSelect,
            n,
        ));
        println!(
            "{:>4} | {:>12} {:>12} | {:>12.1} {:>12.1} | {:>10.2} {:>10.2}",
            n,
            kqps(r.metrics.qps),
            kqps(c.metrics.qps),
            r.metrics.avg_latency_us,
            c.metrics.avg_latency_us,
            r.metrics.interconnect_gbps,
            c.metrics.interconnect_gbps
        );
    }
    footer("RDMA hits its NIC ceiling early (read amplification: whole pages per row); CXL touches only needed lines");
}
