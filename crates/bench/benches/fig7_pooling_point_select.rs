//! Figure 7: PolarCXLMem vs RDMA-based disaggregated memory, sysbench
//! point-select — total throughput, average latency, and RDMA/CXL
//! bandwidth as instances scale 1–12 on one host.

use bench::{banner, footer, kqps, run_sweep};
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

fn main() {
    banner(
        "Figure 7",
        "Pooling: point-select, RDMA vs PolarCXLMem",
        "RDMA saturates at 3 instances (~1.1M QPS, 11 GB/s); PolarCXLMem scales to 3.6M QPS at 12 with stable latency",
    );
    println!(
        "{:>4} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
        "n", "RDMA K-QPS", "CXL K-QPS", "RDMA lat us", "CXL lat us", "RDMA GB/s", "CXL GB/s"
    );
    let configs: Vec<PoolingConfig> = (1..=12usize)
        .flat_map(|n| {
            [
                PoolingConfig::standard(PoolKind::TieredRdma, SysbenchKind::PointSelect, n),
                PoolingConfig::standard(PoolKind::Cxl, SysbenchKind::PointSelect, n),
            ]
        })
        .collect();
    let results = run_sweep(&configs, run_pooling);
    for (pair, n) in results.chunks(2).zip(1..) {
        let (r, c) = (&pair[0].metrics, &pair[1].metrics);
        println!(
            "{:>4} | {:>12} {:>12} | {:>12.1} {:>12.1} | {:>10.2} {:>10.2}",
            n,
            kqps(r.qps),
            kqps(c.qps),
            r.avg_latency_us,
            c.avg_latency_us,
            r.interconnect_gbps,
            c.interconnect_gbps
        );
    }
    footer("RDMA hits its NIC ceiling early (read amplification: whole pages per row); CXL touches only needed lines");
}
