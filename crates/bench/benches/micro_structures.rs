//! Microbenchmarks of the core data structures: CXL pool accesses,
//! B+tree operations, the buffer-pool frame table, the CXL memory
//! manager, and WAL encode/append.
//! These guard the simulator's own performance (host time per simulated
//! operation), which bounds how much virtual time the figure harnesses
//! can afford.
//!
//! Self-contained timing loops (no external harness): each benchmark
//! warms up, then reports ns/op over a fixed iteration count.

use memsim::{CxlPool, NodeId};
use polarcxlmem::CxlMemoryManager;
use simkit::SimTime;
use std::hint::black_box;
use std::time::Instant;
use storage::{PageId, Wal};

/// Time `iters` runs of `f` after `warmup` untimed runs; print ns/op.
fn bench(name: &str, warmup: u64, iters: u64, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<32} {:>12.1} ns/op   ({iters} iters in {:.1} ms)",
        elapsed.as_nanos() as f64 / iters as f64,
        elapsed.as_secs_f64() * 1e3
    );
}

fn bench_cxl_access() {
    let mut pool = CxlPool::single_host(8 << 20, 1, 1 << 20, false);
    let mut buf = [0u8; 64];
    let mut t = SimTime::ZERO;
    let mut off = 0u64;
    bench("cxl_cached_read_64B", 10_000, 1_000_000, || {
        off = (off + 64) % (4 << 20);
        let a = pool.read(NodeId(0), off, &mut buf, t);
        t = a.end;
        black_box(a.misses);
    });
    bench("cxl_cached_read_16KB", 1_000, 50_000, || {
        let mut page = [0u8; 16 << 10];
        off = (off + (16 << 10)) % (4 << 20);
        let a = pool.read(NodeId(0), off, &mut page, t);
        t = a.end;
        black_box(a.misses);
    });
    bench("cxl_ntstore_64B", 10_000, 1_000_000, || {
        off = (off + 64) % (4 << 20);
        let a = pool.write_uncached(NodeId(0), off, &buf, t);
        t = a.end;
        black_box(a.link_bytes);
    });
}

fn bench_btree() {
    use btree::BTree;
    use bufferpool::dram_bp::DramBp;
    use storage::PageStore;
    let store = PageStore::with_page_size(4096, 16 * 1024);
    let mut bp = DramBp::new(4096, 8 << 20, store);
    let mut wal = Wal::new();
    let (mut tree, _) = BTree::create(&mut bp, &mut wal, 188, SimTime::ZERO);
    for k in 0..100_000u64 {
        tree.insert(&mut bp, &mut wal, k, &[7u8; 188], SimTime::ZERO);
    }
    let mut k = 0u64;
    bench("btree_get_100k", 10_000, 500_000, || {
        k = (k + 7919) % 100_000;
        black_box(tree.get(&mut bp, k, SimTime::ZERO).0.is_some());
    });
    bench("btree_update_field_100k", 10_000, 500_000, || {
        k = (k + 104_729) % 100_000;
        black_box(tree.update_field(&mut bp, &mut wal, k, 8, &[1u8; 16], SimTime::ZERO));
    });
}

fn bench_frame_table() {
    use bufferpool::frames::{FrameTable, ShardedFrameTable};
    use simkit::FastMap;
    use storage::Lsn;

    const FRAMES: usize = 1 << 16;

    // The SoA table: one residency probe, then indexed array stores —
    // the exact hot write path of every pool (`fix` + dirty + LSN).
    let mut soa = FrameTable::new(FRAMES);
    for p in 0..FRAMES as u64 {
        let f = soa.pop_free().unwrap();
        soa.install(f, PageId(p));
    }
    let mut k = 0u64;
    bench("frame_soa_touch_dirty_lsn", 10_000, 1_000_000, || {
        k = (k + 7919) % FRAMES as u64;
        let f = soa.lookup_touch(PageId(k)).unwrap();
        soa.mark_dirty(f);
        soa.set_lsn(f, Lsn(k));
        black_box(f);
    });

    // The pre-SoA shape the pools used to carry: one map probe for the
    // frame, the same LRU touch, plus a *second* hashed insert for the
    // LSN on every write.
    let mut map: FastMap<PageId, u32> = FastMap::default();
    map.reserve(FRAMES);
    let mut lsns: FastMap<PageId, Lsn> = FastMap::default();
    lsns.reserve(FRAMES);
    let mut dirty = vec![false; FRAMES];
    let mut lru = bufferpool::lru::LruList::new(FRAMES);
    for p in 0..FRAMES as u64 {
        map.insert(PageId(p), p as u32);
        lru.push_front(p as u32);
    }
    bench(
        "frame_double_map_touch_dirty_lsn",
        10_000,
        1_000_000,
        || {
            k = (k + 7919) % FRAMES as u64;
            let f = *map.get(&PageId(k)).unwrap();
            lru.touch(f);
            dirty[f as usize] = true;
            lsns.insert(PageId(k), Lsn(k));
            black_box(f);
        },
    );

    // Eviction-policy hot paths, same table shape. Two mixes: pure
    // hit-touch (the fix path of a warm pool — LRU/2Q splice a list per
    // touch, CLOCK stores a refbit) and evict-install (the miss path —
    // CLOCK pays its hand sweep here, 2Q its queue moves).
    use bufferpool::PolicyKind;
    for kind in PolicyKind::ALL {
        let mut t = FrameTable::with_policy(FRAMES, kind);
        for p in 0..FRAMES as u64 {
            let f = t.pop_free().unwrap();
            t.install(f, PageId(p));
        }
        bench(
            &format!("frame_{}_hit_touch", kind.name()),
            10_000,
            1_000_000,
            || {
                k = (k + 7919) % FRAMES as u64;
                let f = t.lookup_touch(PageId(k)).unwrap();
                t.mark_dirty(f);
                t.set_lsn(f, Lsn(k));
                black_box(f);
            },
        );
    }
    for kind in PolicyKind::ALL {
        let mut t = FrameTable::with_policy(FRAMES, kind);
        for p in 0..FRAMES as u64 {
            let f = t.pop_free().unwrap();
            t.install(f, PageId(p));
        }
        let mut next = FRAMES as u64;
        bench(
            &format!("frame_{}_evict_install", kind.name()),
            10_000,
            500_000,
            || {
                // Touch a spread of resident pages so victim selection
                // sees a realistic mix of referenced and cold frames.
                k = (k + 7919) % FRAMES as u64;
                if let Some(f) = t.lookup_touch(PageId(k)) {
                    black_box(f);
                }
                let f = t.pop_victim().unwrap();
                t.evict(f);
                t.install(f, PageId(next));
                next += 1;
            },
        );
    }

    // Intra-node sharding: the same hot path through an 8-way
    // page-partitioned table (one shard-select mask, smaller maps).
    let mut sharded = ShardedFrameTable::new(8, FRAMES / 8);
    for p in 0..FRAMES as u64 {
        let page = PageId(p);
        let shard = sharded.shard_mut(page);
        let f = shard.pop_free().unwrap();
        shard.install(f, page);
    }
    bench("frame_sharded8_touch_dirty_lsn", 10_000, 1_000_000, || {
        k = (k + 7919) % FRAMES as u64;
        let page = PageId(k);
        let shard = sharded.shard_mut(page);
        let f = shard.lookup_touch(page).unwrap();
        shard.mark_dirty(f);
        shard.set_lsn(f, Lsn(k));
        black_box(f);
    });
}

fn bench_manager() {
    bench("cxl_manager_alloc_release_64", 100, 10_000, || {
        let mut m = CxlMemoryManager::new(1 << 30);
        let mut leases = Vec::new();
        for i in 0..64 {
            leases.push(m.allocate(NodeId(i % 4), 1 << 16, SimTime::ZERO).unwrap().0);
        }
        for l in leases {
            m.release(l, SimTime::ZERO).unwrap();
        }
    });
}

fn bench_wal() {
    bench("wal_append_seal_flush_128", 100, 10_000, || {
        let mut wal = Wal::new();
        for i in 0..128u64 {
            wal.append_update(PageId(i % 8), 0, &[0u8; 128]);
            wal.seal_mtr();
        }
        black_box(wal.flush(SimTime::ZERO));
    });
}

fn main() {
    println!("\n=== micro_structures: host ns per simulated operation ===");
    bench_cxl_access();
    bench_btree();
    bench_frame_table();
    bench_manager();
    bench_wal();
    println!();
}
