//! Criterion microbenchmarks of the core data structures: CXL pool
//! accesses, cache probes, B+tree operations, the CXL memory manager,
//! and WAL encode/append. These guard the simulator's own performance
//! (host time per simulated operation), which bounds how much virtual
//! time the figure harnesses can afford.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use memsim::{CxlPool, NodeId};
use polarcxlmem::CxlMemoryManager;
use simkit::SimTime;
use storage::{PageId, Wal};

fn bench_cxl_access(c: &mut Criterion) {
    let mut pool = CxlPool::single_host(8 << 20, 1, 1 << 20, false);
    let mut buf = [0u8; 64];
    let mut t = SimTime::ZERO;
    let mut off = 0u64;
    c.bench_function("cxl_cached_read_64B", |b| {
        b.iter(|| {
            off = (off + 64) % (4 << 20);
            let a = pool.read(NodeId(0), off, &mut buf, t);
            t = a.end;
            a.misses
        })
    });
    c.bench_function("cxl_ntstore_64B", |b| {
        b.iter(|| {
            off = (off + 64) % (4 << 20);
            let a = pool.write_uncached(NodeId(0), off, &buf, t);
            t = a.end;
            a.link_bytes
        })
    });
}

fn bench_btree(c: &mut Criterion) {
    use bufferpool::dram_bp::DramBp;
    use btree::BTree;
    use storage::PageStore;
    let store = PageStore::with_page_size(4096, 16 * 1024);
    let mut bp = DramBp::new(4096, 8 << 20, store);
    let mut wal = Wal::new();
    let (mut tree, _) = BTree::create(&mut bp, &mut wal, 188, SimTime::ZERO);
    for k in 0..100_000u64 {
        tree.insert(&mut bp, &mut wal, k, &[7u8; 188], SimTime::ZERO);
    }
    let mut k = 0u64;
    c.bench_function("btree_get_100k", |b| {
        b.iter(|| {
            k = (k + 7919) % 100_000;
            tree.get(&mut bp, k, SimTime::ZERO).0.is_some()
        })
    });
    c.bench_function("btree_update_field_100k", |b| {
        b.iter(|| {
            k = (k + 104_729) % 100_000;
            tree.update_field(&mut bp, &mut wal, k, 8, &[1u8; 16], SimTime::ZERO)
        })
    });
}

fn bench_manager(c: &mut Criterion) {
    c.bench_function("cxl_manager_alloc_release", |b| {
        b.iter_batched(
            || CxlMemoryManager::new(1 << 30),
            |mut m| {
                let mut leases = Vec::new();
                for i in 0..64 {
                    leases.push(m.allocate(NodeId(i % 4), 1 << 16, SimTime::ZERO).unwrap().0);
                }
                for l in leases {
                    m.release(l, SimTime::ZERO);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_wal(c: &mut Criterion) {
    c.bench_function("wal_append_seal_flush", |b| {
        b.iter_batched(
            Wal::new,
            |mut wal| {
                for i in 0..128u64 {
                    wal.append_update(PageId(i % 8), 0, vec![0u8; 128]);
                    wal.seal_mtr();
                }
                wal.flush(SimTime::ZERO)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_cxl_access, bench_btree, bench_manager, bench_wal);
criterion_main!(benches);
