//! Ablation: CPU-cache sensitivity of the CXL-resident buffer pool.
//!
//! The paper's §2.3 argues "CPU caching further enhances performance
//! when directly accessing CXL memory". This bench sweeps the per-
//! instance cache budget and reports throughput, latency and CXL link
//! traffic for sysbench point-select.

use bench::{banner, footer, kqps};
use simkit::SimTime;
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

fn main() {
    banner(
        "Ablation A3",
        "CXL-BP sensitivity to CPU cache capacity",
        "the CPU cache absorbs CXL traffic; with no cache every line rides the switch",
    );
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "cache", "K-QPS", "avg lat (us)", "CXL GB/s"
    );
    for &kb in &[64usize, 256, 1024, 4096, 16384] {
        let mut cfg = PoolingConfig::standard(PoolKind::Cxl, SysbenchKind::PointSelect, 4);
        cfg.cache_bytes = kb << 10;
        cfg.duration = SimTime::from_millis(150);
        let r = run_pooling(&cfg);
        println!(
            "{:>7}KiB {:>12} {:>14.1} {:>12.2}",
            kb,
            kqps(r.metrics.qps),
            r.metrics.avg_latency_us,
            r.metrics.interconnect_gbps
        );
    }
    footer("bigger caches trade switch bandwidth for hit latency; throughput stays CPU-bound as the paper observes");
}
