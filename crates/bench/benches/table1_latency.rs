//! Table 1: access latency of DRAM vs CXL (with/without switch),
//! local vs remote NUMA — an Intel-MLC-style single-line pointer chase
//! against each memory path.

use bench::{banner, footer};
use memsim::calib::{
    CXL_DIRECT_LOCAL_NS, CXL_DIRECT_REMOTE_NS, CXL_SWITCH_LOCAL_NS, CXL_SWITCH_REMOTE_NS,
};
use memsim::{CxlNodeConfig, CxlPool, DramSpace, NodeId};
use simkit::SimTime;

/// Measure mean single-cache-line load latency over `n` dependent loads
/// at distinct addresses (defeating the cache, as MLC does).
fn chase_cxl(pool: &mut CxlPool, node: NodeId, n: u64) -> f64 {
    let mut t = SimTime::ZERO;
    let mut buf = [0u8; 8];
    for i in 0..n {
        let a = pool.read_uncached(node, i * 64, &mut buf, t);
        t = a.end;
    }
    t.as_nanos() as f64 / n as f64
}

fn chase_dram(space: &mut DramSpace, n: u64) -> f64 {
    let mut t = SimTime::ZERO;
    let mut buf = [0u8; 8];
    for i in 0..n {
        // A fresh line each time: every access misses the CPU cache.
        let a = space.read((i * 64) % (space.len() as u64 - 64), &mut buf, t);
        t = a.end;
    }
    t.as_nanos() as f64 / n as f64
}

fn main() {
    banner(
        "Table 1",
        "Access latency comparison between DRAM and CXL",
        "DRAM 146/231 ns (local/remote), CXL w/o switch 265.2/345.9 ns, CXL w/ switch 549/651 ns",
    );
    const N: u64 = 10_000;

    let mut dram_local = DramSpace::new(2 << 20, 64, false);
    let mut dram_remote = DramSpace::new(2 << 20, 64, true);

    let mk_pool = |remote: bool| {
        CxlPool::new(
            2 << 20,
            [CxlNodeConfig {
                host: 0,
                cache_bytes: 64,
                capture: false,
                remote_numa: remote,
                direct_attach: false,
            }],
        )
    };
    let mut cxl_local = mk_pool(false);
    let mut cxl_remote = mk_pool(true);

    println!("{:<22} {:>12} {:>12}", "path", "local (ns)", "remote (ns)");
    println!(
        "{:<22} {:>12.0} {:>12.0}",
        "DRAM",
        chase_dram(&mut dram_local, N),
        chase_dram(&mut dram_remote, N)
    );
    // The no-switch configuration is a calibration constant (we model
    // the switched path; direct-attach is reported for completeness).
    println!(
        "{:<22} {:>12.0} {:>12.0}",
        "CXL w/o switch (calib)", CXL_DIRECT_LOCAL_NS as f64, CXL_DIRECT_REMOTE_NS as f64
    );
    println!(
        "{:<22} {:>12.0} {:>12.0}",
        "CXL w/ switch (load)", CXL_SWITCH_LOCAL_NS as f64, CXL_SWITCH_REMOTE_NS as f64
    );
    println!(
        "{:<22} {:>12.0} {:>12.0}",
        "CXL w/ switch (sw path)",
        chase_cxl(&mut cxl_local, NodeId(0), N),
        chase_cxl(&mut cxl_remote, NodeId(0), N)
    );
    footer("switched-CXL loads include the software copy overhead the database path pays");
}
