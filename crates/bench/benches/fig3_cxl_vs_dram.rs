//! Figure 3: DRAM-based vs CXL-based buffer pool throughput as the
//! number of instances on one 192-vCPU host grows from 1 to 12, for
//! point-select, range-select and read-write.

use bench::{banner, footer, kqps};
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

fn sweep(workload: SysbenchKind, instances: &[usize]) {
    println!("[{workload:?}]");
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "instances", "DRAM-BP K-QPS", "CXL-BP K-QPS", "CXL/DRAM"
    );
    for &n in instances {
        let d = run_pooling(&PoolingConfig::standard(PoolKind::Dram, workload, n));
        let c = run_pooling(&PoolingConfig::standard(PoolKind::Cxl, workload, n));
        println!(
            "{:>10} {:>14} {:>14} {:>7.1}%",
            n,
            kqps(d.metrics.qps),
            kqps(c.metrics.qps),
            100.0 * c.metrics.qps / d.metrics.qps
        );
    }
}

fn main() {
    banner(
        "Figure 3",
        "DRAM-based vs CXL-based buffer pool in the database",
        "CXL-BP within ~7-10% of DRAM-BP at every scale; both scale to 12 instances",
    );
    let pts = [1usize, 2, 4, 6, 8, 10, 12];
    sweep(SysbenchKind::PointSelect, &pts);
    println!();
    sweep(SysbenchKind::RangeSelect, &pts);
    println!();
    sweep(SysbenchKind::ReadWrite, &pts);
    footer("running the buffer pool directly on CXL memory costs only a few percent vs local DRAM");
}
