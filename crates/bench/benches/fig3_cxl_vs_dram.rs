//! Figure 3: DRAM-based vs CXL-based buffer pool throughput as the
//! number of instances on one 192-vCPU host grows from 1 to 12, for
//! point-select, range-select and read-write.

use bench::{banner, footer, kqps, run_sweep};
use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};

const POINTS: [usize; 7] = [1, 2, 4, 6, 8, 10, 12];

fn main() {
    banner(
        "Figure 3",
        "DRAM-based vs CXL-based buffer pool in the database",
        "CXL-BP within ~7-10% of DRAM-BP at every scale; both scale to 12 instances",
    );
    let workloads = [
        SysbenchKind::PointSelect,
        SysbenchKind::RangeSelect,
        SysbenchKind::ReadWrite,
    ];
    let configs: Vec<PoolingConfig> = workloads
        .iter()
        .flat_map(|&w| {
            POINTS.iter().flat_map(move |&n| {
                [
                    PoolingConfig::standard(PoolKind::Dram, w, n),
                    PoolingConfig::standard(PoolKind::Cxl, w, n),
                ]
            })
        })
        .collect();
    let results = run_sweep(&configs, run_pooling);
    for (series, &w) in results.chunks(2 * POINTS.len()).zip(workloads.iter()) {
        println!("[{w:?}]");
        println!(
            "{:>10} {:>14} {:>14} {:>8}",
            "instances", "DRAM-BP K-QPS", "CXL-BP K-QPS", "CXL/DRAM"
        );
        for (pair, &n) in series.chunks(2).zip(POINTS.iter()) {
            let (d, c) = (&pair[0].metrics, &pair[1].metrics);
            println!(
                "{:>10} {:>14} {:>14} {:>7.1}%",
                n,
                kqps(d.qps),
                kqps(c.qps),
                100.0 * c.qps / d.qps
            );
        }
        println!();
    }
    footer("running the buffer pool directly on CXL memory costs only a few percent vs local DRAM");
}
