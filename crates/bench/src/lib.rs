//! Shared helpers for the paper-figure bench harness.
//!
//! Each `[[bench]]` target (harness = false) regenerates one table or
//! figure of the paper and prints the same rows/series the paper
//! reports, with a header recalling what the paper measured so the
//! shapes can be compared side by side. `EXPERIMENTS.md` records a
//! paper-vs-measured summary for every target.

pub mod sweep;

pub use sweep::{host_threads, run_sweep, run_sweep_threads};

/// Print a figure/table banner.
pub fn banner(id: &str, title: &str, paper_summary: &str) {
    println!("\n=== {id}: {title} ===");
    println!("paper: {paper_summary}");
    println!("{}", "-".repeat(78));
}

/// Print a closing note.
pub fn footer(note: &str) {
    println!("{}", "-".repeat(78));
    println!("note: {note}\n");
}

/// Format a QPS value in K-QPS as the paper plots.
pub fn kqps(qps: f64) -> String {
    format!("{:.1}", qps / 1e3)
}

/// Relative improvement in percent: (a/b - 1) * 100.
pub fn improvement_pct(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        (a / b - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert!((improvement_pct(210.0, 100.0) - 110.0).abs() < 1e-9);
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
    }

    #[test]
    fn kqps_formats() {
        assert_eq!(kqps(3_600_000.0), "3600.0");
    }
}
