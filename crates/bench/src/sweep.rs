//! Parallel sweep runner: fan independent run configurations across
//! host OS threads.
//!
//! Every figure/table harness in this crate is a *sweep*: dozens of
//! completely independent simulations (one per configuration point),
//! each of which builds its own simulated world — pools, links, caches,
//! RNG streams — and runs it to completion in virtual time. The worlds
//! share nothing (the `Rc<RefCell<CxlPool>>` state is per-run), so the
//! only thing serial about a sweep is the host CPU it runs on.
//!
//! [`run_sweep`] exploits exactly that: configurations are claimed off a
//! shared atomic counter by a small pool of scoped threads, each thread
//! constructs and runs its world *entirely on its own stack*, and
//! results land in per-configuration slots so the output order equals
//! the input order regardless of which thread finished when.
//!
//! Determinism is untouched by design: parallelism is across runs,
//! never within one virtual timeline. A configuration's result depends
//! only on the configuration (every run seeds its own RNG streams), so
//! `threads = 1` and `threads = N` produce bit-identical results — the
//! `determinism` integration test pins this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of host threads worth using for sweeps: the machine's
/// available parallelism, overridable with the `SWEEP_THREADS`
/// environment variable (useful for A/B-ing the runner itself).
pub fn host_threads() -> usize {
    if let Ok(v) = std::env::var("SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over every configuration using [`host_threads`] workers,
/// returning results in input order.
pub fn run_sweep<C, R, F>(configs: &[C], f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    run_sweep_threads(configs, host_threads(), f)
}

/// Run `f` over every configuration using exactly `threads` workers
/// (`<= 1` runs inline on the calling thread), returning results in
/// input order.
///
/// `f` must be a pure function of the configuration: it is called once
/// per configuration, from an arbitrary thread, with no ordering
/// guarantee between configurations. Panics in `f` propagate to the
/// caller when the scope joins.
pub fn run_sweep_threads<C, R, F>(configs: &[C], threads: usize, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    if threads <= 1 || configs.len() <= 1 {
        return configs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(configs.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let r = f(&configs[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every slot is claimed exactly once")
        })
        .collect()
}

/// Minimal JSON emission for machine-readable bench artifacts
/// (`BENCH_host_perf.json`). Numbers use Rust's shortest-roundtrip
/// float formatting; non-finite floats become `null`.
pub mod json {
    /// Escape a string for a JSON string literal (without quotes).
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Render an `f64` as a JSON value.
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".into()
        }
    }

    /// Incrementally built JSON object.
    #[derive(Debug, Default)]
    pub struct Obj {
        fields: Vec<String>,
    }

    impl Obj {
        /// Empty object.
        pub fn new() -> Self {
            Self::default()
        }

        /// Add a pre-rendered JSON value.
        pub fn raw(mut self, key: &str, value: &str) -> Self {
            self.fields.push(format!("\"{}\": {value}", escape(key)));
            self
        }

        /// Add a string field.
        pub fn str(self, key: &str, value: &str) -> Self {
            let v = format!("\"{}\"", escape(value));
            self.raw(key, &v)
        }

        /// Add an integer field.
        pub fn int(self, key: &str, value: u64) -> Self {
            let v = value.to_string();
            self.raw(key, &v)
        }

        /// Add a float field.
        pub fn num(self, key: &str, value: f64) -> Self {
            let v = num(value);
            self.raw(key, &v)
        }

        /// Add an array of pre-rendered values.
        pub fn arr(self, key: &str, values: &[String]) -> Self {
            let v = format!("[{}]", values.join(", "));
            self.raw(key, &v)
        }

        /// Render as `{...}`.
        pub fn build(&self) -> String {
            format!("{{{}}}", self.fields.join(", "))
        }

        /// Render indented at top level (one field per line).
        pub fn build_pretty(&self) -> String {
            let mut out = String::from("{\n");
            for (i, f) in self.fields.iter().enumerate() {
                out.push_str("  ");
                out.push_str(f);
                if i + 1 < self.fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push('}');
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_input_order() {
        let configs: Vec<u64> = (0..50).collect();
        let out = run_sweep_threads(&configs, 8, |&c| c * c);
        assert_eq!(out, configs.iter().map(|c| c * c).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let configs: Vec<u64> = (0..23).collect();
        let serial =
            run_sweep_threads(&configs, 1, |&c| c.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let parallel =
            run_sweep_threads(&configs, 4, |&c| c.wrapping_mul(0x9E37_79B9).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_configs() {
        let none: Vec<u32> = vec![];
        assert!(run_sweep_threads(&none, 4, |&c| c).is_empty());
        assert_eq!(run_sweep_threads(&[9u32], 4, |&c| c + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_configs() {
        let out = run_sweep_threads(&[1u32, 2], 16, |&c| c);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn json_object_renders() {
        let o = json::Obj::new()
            .str("name", "fig7 \"sweep\"")
            .int("threads", 8)
            .num("speedup", 3.5)
            .arr("xs", &[json::num(1.0), json::num(2.5)]);
        assert_eq!(
            o.build(),
            r#"{"name": "fig7 \"sweep\"", "threads": 8, "speedup": 3.5, "xs": [1, 2.5]}"#
        );
        assert!(o.build_pretty().contains("\n  \"threads\": 8,\n"));
    }

    #[test]
    fn json_non_finite_is_null() {
        assert_eq!(json::num(f64::NAN), "null");
        assert_eq!(json::num(f64::INFINITY), "null");
    }
}
