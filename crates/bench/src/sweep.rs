//! Parallel sweep runner: fan independent run configurations across
//! host OS threads.
//!
//! Every figure/table harness in this crate is a *sweep*: dozens of
//! completely independent simulations (one per configuration point),
//! each of which builds its own simulated world — pools, links, caches,
//! RNG streams — and runs it to completion in virtual time. The worlds
//! share nothing (the `Rc<RefCell<CxlPool>>` state is per-run), so the
//! only thing serial about a sweep is the host CPU it runs on.
//!
//! [`run_sweep`] exploits exactly that: configurations are claimed off a
//! shared atomic counter by a small pool of scoped threads, each thread
//! constructs and runs its world *entirely on its own stack*, and
//! results land in per-configuration slots so the output order equals
//! the input order regardless of which thread finished when.
//!
//! Determinism is untouched by design: parallelism is across runs,
//! never within one virtual timeline. A configuration's result depends
//! only on the configuration (every run seeds its own RNG streams), so
//! `threads = 1` and `threads = N` produce bit-identical results — the
//! `determinism` integration test pins this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of host threads worth using for sweeps: the machine's
/// available parallelism, overridable with the `SWEEP_THREADS`
/// environment variable (useful for A/B-ing the runner itself).
pub fn host_threads() -> usize {
    if let Ok(v) = std::env::var("SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over every configuration using [`host_threads`] workers,
/// returning results in input order.
///
/// Single-configuration sweeps honor the `--trace <path>` switch (or the
/// `TRACE_OUT` env var): the run executes with span recording and
/// latency attribution enabled and the Chrome `trace_event` JSON is
/// written to the given path — see [`run_traced`]. Multi-configuration
/// sweeps ignore the switch (interleaved per-thread rings would produce
/// a misleading mixed trace).
pub fn run_sweep<C, R, F>(configs: &[C], f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    if configs.len() == 1 {
        if let Some(path) = trace_out_path() {
            return vec![run_traced(&configs[0], &path, &f)];
        }
    }
    run_sweep_threads(configs, host_threads(), f)
}

/// Trace output path from the `--trace <path>` command-line switch or
/// the `TRACE_OUT` environment variable (argv wins); `None` when neither
/// is set.
pub fn trace_out_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(Into::into);
        }
    }
    std::env::var_os("TRACE_OUT").map(Into::into)
}

/// Run `f(cfg)` with span recording and latency attribution enabled,
/// then write the recorded spans as Chrome `trace_event` JSON to `path`
/// (load it in https://ui.perfetto.dev or `chrome://tracing`).
/// Tracing is observation-only, so the returned result is bit-identical
/// to an untraced run.
pub fn run_traced<C, R>(cfg: &C, path: &std::path::Path, f: impl Fn(&C) -> R) -> R {
    use simkit::trace;
    trace::reset();
    trace::enable_spans(true);
    trace::enable_attribution(true);
    let r = f(cfg);
    trace::enable_spans(false);
    trace::enable_attribution(false);
    let events = trace::take_events();
    let dropped = trace::dropped_events();
    std::fs::write(path, trace::chrome_trace_json(&events))
        .unwrap_or_else(|e| panic!("writing trace to {}: {e}", path.display()));
    eprintln!(
        "trace: {} spans -> {} ({} dropped; open in Perfetto)",
        events.len(),
        path.display(),
        dropped
    );
    trace::reset();
    r
}

/// Run `f` over every configuration using exactly `threads` workers
/// (`<= 1` runs inline on the calling thread), returning results in
/// input order.
///
/// `f` must be a pure function of the configuration: it is called once
/// per configuration, from an arbitrary thread, with no ordering
/// guarantee between configurations. Panics in `f` propagate to the
/// caller when the scope joins.
pub fn run_sweep_threads<C, R, F>(configs: &[C], threads: usize, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    if threads <= 1 || configs.len() <= 1 {
        return configs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(configs.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let r = f(&configs[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every slot is claimed exactly once")
        })
        .collect()
}

/// Minimal JSON emission for machine-readable bench artifacts
/// (`BENCH_host_perf.json`). Now lives in `simkit::json` so the metrics
/// registry and trace exporter can use it too; re-exported here for the
/// bench harnesses.
pub use simkit::json;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_input_order() {
        let configs: Vec<u64> = (0..50).collect();
        let out = run_sweep_threads(&configs, 8, |&c| c * c);
        assert_eq!(out, configs.iter().map(|c| c * c).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let configs: Vec<u64> = (0..23).collect();
        let serial =
            run_sweep_threads(&configs, 1, |&c| c.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let parallel =
            run_sweep_threads(&configs, 4, |&c| c.wrapping_mul(0x9E37_79B9).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_configs() {
        let none: Vec<u32> = vec![];
        assert!(run_sweep_threads(&none, 4, |&c| c).is_empty());
        assert_eq!(run_sweep_threads(&[9u32], 4, |&c| c + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_configs() {
        let out = run_sweep_threads(&[1u32, 2], 16, |&c| c);
        assert_eq!(out, vec![1, 2]);
    }
}
