//! Telemetry pipeline exactness and alerting semantics.
//!
//! Three properties make the windowed telemetry layer trustworthy as a
//! measurement instrument rather than a sampling approximation:
//!
//! 1. **Window exactness** — the per-window histograms are a lossless
//!    partition of the run: merging every sealed window's histogram
//!    reproduces the end-of-run histogram bit-for-bit, and each
//!    window's p50/p99 equals a reference histogram fed the same
//!    latencies.
//! 2. **Bucket alignment** — `TimeSeries` places events at exact
//!    virtual-time bucket boundaries deterministically, including the
//!    horizon edge, and capacity pre-reservation never changes results.
//! 3. **Hysteresis** — the alert engine fires on sustained breaches
//!    only: an oscillating metric produces zero alerts, a sustained
//!    breach exactly one fire and (after recovery) exactly one clear.
//!
//! Every hub-content assertion is gated on `telemetry::compiled()` so
//! the same test file passes under `--no-default-features`, where it
//! instead pins the disabled contract (`telemetry: None`, empty hub).

use polardb_cxl_repro::prelude::*;
use simkit::{Histogram, SimTime, TimeSeries};

const WINDOW_NS: u64 = 1_000;

/// Deterministic latency stream (no RNG: plain arithmetic hash).
fn latency(i: u64) -> u64 {
    (i.wrapping_mul(7_919)) % 450_000 + 64
}

#[test]
fn window_histograms_merge_to_the_end_of_run_histogram() {
    let cfg = TelemetryConfig::new(SimTime(WINDOW_NS), 1).lanes(&["rw"]);
    let mut hub = TelemetryHub::new(cfg.clone());
    let mut probe = telemetry::NodeProbe::new(0, &cfg);

    const WINDOWS: u64 = 8;
    const OPS: u64 = 400;
    let mut reference = Histogram::new();
    let mut per_window = vec![Histogram::new(); WINDOWS as usize];
    for i in 0..OPS {
        // Non-monotonic end times exercise the out-of-order slot path.
        let t = (i * 137) % (WINDOWS * WINDOW_NS);
        let l = latency(i);
        probe.record_op(0, SimTime(t), l);
        reference.record(l);
        per_window[(t / WINDOW_NS) as usize].record(l);
    }
    hub.drain(&mut probe);
    hub.finish(SimTime(WINDOWS * WINDOW_NS));
    let rep = hub.report();

    if !telemetry::compiled() {
        assert_eq!(rep.rows.len(), 0, "no-op build must report empty");
        assert_eq!(hub.merged_histogram(0).count(), 0);
        return;
    }

    // Lossless partition: window histograms merge back to the whole.
    assert_eq!(hub.merged_histogram(0), reference);

    // Every op landed in exactly one window, and each window's
    // summary stats match a reference histogram fed the same samples.
    assert_eq!(rep.windows, WINDOWS);
    assert_eq!(rep.rows.iter().map(|r| r.ops).sum::<u64>(), OPS);
    for row in &rep.rows {
        let h = &per_window[row.window as usize];
        assert_eq!(row.ops, h.count(), "window {} op count", row.window);
        assert_eq!(row.p50_ns, h.quantile_ns(0.50), "window {} p50", row.window);
        assert_eq!(row.p99_ns, h.quantile_ns(0.99), "window {} p99", row.window);
    }
}

#[test]
fn timeseries_buckets_align_exactly_at_horizon_edges() {
    let horizon = SimTime(10 * WINDOW_NS);
    let mut plain = TimeSeries::new(WINDOW_NS);
    let mut reserved = TimeSeries::with_capacity_for(WINDOW_NS, horizon);
    for ts in [&mut plain, &mut reserved] {
        ts.record_at(SimTime(0), 1); // first instant of bucket 0
        ts.record_at(SimTime(WINDOW_NS - 1), 2); // last instant of bucket 0
        ts.record_at(SimTime(WINDOW_NS), 4); // first instant of bucket 1
        ts.record_at(SimTime(horizon.as_nanos() - 1), 8); // inside the horizon
        ts.record_at(horizon, 16); // horizon edge opens a fresh bucket
    }
    // Boundary instants split exactly: [w*B, (w+1)*B) half-open.
    assert_eq!(plain.buckets()[0], 3);
    assert_eq!(plain.buckets()[1], 4);
    assert_eq!(plain.buckets()[9], 8);
    assert_eq!(plain.buckets()[10], 16);
    assert_eq!(plain.buckets().len(), 11);
    // Capacity reservation is invisible in the observable series.
    assert_eq!(plain, reserved);
}

/// Drive one window through the hub: `misses` of `ops` operations miss.
fn feed_window(hub: &mut TelemetryHub, cfg: &TelemetryConfig, w: u64, ops: u64, misses: u64) {
    let mut probe = telemetry::NodeProbe::new(0, cfg);
    let mid = SimTime(w * WINDOW_NS + WINDOW_NS / 2);
    for i in 0..ops {
        probe.record_op(0, mid, latency(i));
    }
    probe.record_misses(0, mid, misses);
    hub.ingest(&mut probe, SimTime((w + 1) * WINDOW_NS));
    hub.seal(SimTime((w + 1) * WINDOW_NS));
}

#[test]
fn alert_hysteresis_ignores_oscillation_and_fires_once_on_sustained_breach() {
    let rule = SloRule::above("miss_thrash", Metric::MissRate, 0.5)
        .fire_after(2)
        .clear_after(2);
    let cfg = TelemetryConfig::new(SimTime(WINDOW_NS), 1).rule(rule);
    let mut hub = TelemetryHub::new(cfg.clone());

    // Phase 1 — oscillating: breach, clean, breach, clean, ... never
    // two breaches in a row, so fire_after(2) must swallow all of it.
    for w in 0..8 {
        let miss = if w % 2 == 0 { 10 } else { 0 };
        feed_window(&mut hub, &cfg, w, 10, miss);
    }
    // Phase 2 — sustained breach for 4 windows: exactly one fire, at
    // the close of the second breach window (index 9).
    for w in 8..12 {
        feed_window(&mut hub, &cfg, w, 10, 10);
    }
    // Phase 3 — sustained recovery: exactly one clear, at the close of
    // the second clean window (index 13).
    for w in 12..16 {
        feed_window(&mut hub, &cfg, w, 10, 0);
    }
    hub.finish(SimTime(16 * WINDOW_NS));
    let rep = hub.report();

    if !telemetry::compiled() {
        assert!(rep.alerts.is_empty());
        return;
    }

    assert_eq!(
        rep.alert_fires(),
        1,
        "oscillation leaked through hysteresis"
    );
    assert_eq!(rep.alert_clears(), 1);
    assert_eq!(rep.alerts.len(), 2);
    assert_eq!(rep.alerts[0].at, SimTime(10 * WINDOW_NS), "fire time");
    assert!(rep.alerts[0].firing);
    assert_eq!(rep.alerts[1].at, SimTime(14 * WINDOW_NS), "clear time");
    assert!(!rep.alerts[1].firing);
}

#[test]
fn failover_telemetry_matches_the_build_configuration() {
    let cfg = FailoverConfig::smoke(3);
    let r = run_failover(&cfg);
    r.assert_safety();
    if telemetry::compiled() {
        let rep = r.telemetry.as_ref().expect("telemetry compiled in");
        assert!(rep.windows > 0);
        assert!(
            r.registry.get("telemetry_mttd_crash_ns").is_some(),
            "crash MTTD must be scored against ground truth"
        );
    } else {
        assert!(r.telemetry.is_none(), "no-op build must report None");
        assert!(r.registry.get("telemetry_mttd_crash_ns").is_none());
    }
}
