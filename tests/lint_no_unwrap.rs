//! Robustness guard: no `.unwrap(` / `panic!(` on the fabric and
//! storage fault paths.
//!
//! The fault-injection layer (`simkit::faults`) makes transient fabric
//! errors, poisoned reads, and torn device writes *normal* outcomes on
//! these paths. A stray `unwrap`/`panic!` there turns an injectable,
//! recoverable fault into a process abort — exactly the failure mode
//! this PR converts into typed `Result`s plus retry/degrade logic.
//!
//! Scope: all of `crates/memsim/src` (RDMA + CXL fabric models), the
//! storage primitives `wal.rs` / `pagestore.rs`, and the cluster
//! control plane `manager.rs` / `fusion.rs` / `elastic.rs` (lease
//! revocation, epoch fencing, node reclamation and live lease migration
//! run exactly when nodes are dying or crash-recovering, so a
//! panic there takes the failover path down with the failed node), plus
//! the overload-reaction layer `tiering.rs` / `telemetry.rs` (brownout
//! decisions and SLO alerting must keep running *while* the cluster is
//! degraded — that is the only time they matter). Only
//! non-test code is
//! linted (`#[cfg(test)]` and below is free to unwrap). `.expect(` is
//! allowed — it documents an invariant. Deliberate panicking wrappers
//! over typed APIs carry a `// lint: fault-path panic` marker.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Directories and single files whose non-test code must stay
/// panic-free on the fault paths.
const SCANNED: &[&str] = &[
    "crates/memsim/src",
    "crates/storage/src/wal.rs",
    "crates/storage/src/pagestore.rs",
    "crates/core/src/manager.rs",
    "crates/core/src/fusion.rs",
    "crates/core/src/elastic.rs",
    "crates/core/src/tiering.rs",
    "crates/simkit/src/telemetry.rs",
];

const FORBIDDEN: &[&str] = &[".unwrap(", "panic!("];

const MARKER: &str = "lint: fault-path panic";

fn rust_files(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_dir() {
        for entry in std::fs::read_dir(path).expect("readable source dir") {
            rust_files(&entry.expect("dir entry").path(), out);
        }
    } else if path.extension().is_some_and(|e| e == "rs") {
        out.push(path.to_path_buf());
    }
}

/// Byte offset where test code starts (lint only covers non-test code).
fn test_code_start(src: &str) -> usize {
    src.find("#[cfg(test)]").unwrap_or(src.len())
}

fn check_file(path: &Path, violations: &mut String) {
    let src = std::fs::read_to_string(path).expect("readable source file");
    let code = &src[..test_code_start(&src)];
    for (i, line) in code.lines().enumerate() {
        // Doc comments may show panicking idioms without executing them.
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        if FORBIDDEN.iter().any(|p| line.contains(p)) && !line.contains(MARKER) {
            let _ = writeln!(
                violations,
                "{}:{}: panic on a fault path: {}",
                path.display(),
                i + 1,
                line.trim()
            );
        }
    }
}

#[test]
fn no_unwrap_or_panic_on_fabric_and_storage_paths() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for p in SCANNED {
        rust_files(&root.join(p), &mut files);
    }
    files.sort();
    assert!(
        files.len() >= 5,
        "lint scanned suspiciously few files ({}) — moved sources?",
        files.len()
    );
    let mut violations = String::new();
    for f in &files {
        check_file(f, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "fault paths must return typed errors, not abort (use the try_* \
         APIs, or add `// {MARKER}` on a deliberate wrapper whose panic \
         a test pins):\n{violations}"
    );
}

#[test]
fn lint_catches_a_seeded_violation() {
    // The lint must actually fire on the patterns it claims to catch.
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
               fn g() { panic!(\"boom\"); }\n\
               fn h(x: Option<u8>) -> u8 { x.expect(\"allowed\") }\n\
               fn k() { panic!(\"ok\"); } // lint: fault-path panic\n";
    let dir = std::env::temp_dir().join("lint_no_unwrap_seed");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("seeded.rs");
    std::fs::write(&path, src).unwrap();
    let mut violations = String::new();
    check_file(&path, &mut violations);
    std::fs::remove_file(&path).ok();
    assert!(
        violations.contains("seeded.rs:1") && violations.contains("seeded.rs:2"),
        "lint missed a violation: {violations:?}"
    );
    assert!(
        !violations.contains("seeded.rs:3") && !violations.contains("seeded.rs:4"),
        "lint flagged an allowed pattern: {violations:?}"
    );
}
