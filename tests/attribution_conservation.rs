//! Latency-attribution conservation: with `simkit::trace` attribution
//! enabled, the per-lane decomposition of every operation sums *exactly*
//! to its end-to-end simulated latency — no nanosecond is unexplained
//! and none is double-counted — on all four pool designs. Traced byte
//! counts must also agree with the fabric models' own counters.
//!
//! Conservation falls out of the simulator's structure: latencies
//! compose by sequential chaining (`t = op(t)`), and every leaf
//! primitive that advances virtual time records its delta into exactly
//! one lane. These tests pin that property per operation, so any future
//! latency source added without a matching `attr_add` fails here.

use bufferpool::dram_bp::DramBp;
use bufferpool::tiered::TieredRdmaBp;
use bufferpool::BufferPool;
use engine::Db;
use memsim::calib::PAGE_SIZE;
use memsim::{CxlNodeConfig, CxlPool, NodeId, RdmaPool};
use polarcxlmem::{CxlBp, CxlMemoryManager, RdmaDbp, RdmaSharingNode};
use simkit::trace::{self, SpanKind};
use simkit::SimTime;
use std::cell::RefCell;
use std::rc::Rc;
use storage::{PageId, PageStore};

const RECORD: u16 = 120;
const ROWS: u64 = 1_500;
const PAGES: u64 = 256;

fn rows() -> impl Iterator<Item = (u64, Vec<u8>)> {
    (1..=ROWS).map(|k| (k, vec![(k % 251) as u8; RECORD as usize]))
}

/// Drive a mixed operation sequence and assert, after *every*
/// operation, that the attribution delta equals the operation's
/// end-to-end latency. Returns the final time.
fn drive_conserved<P: BufferPool>(db: &mut Db<P>) -> SimTime {
    let mut t = SimTime::ZERO;
    let mut buf = [0u8; 8];
    let mut rng = 0x243F_6A88_85A3_08D3u64;
    for i in 0..400u64 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = 1 + rng % ROWS;
        let before = trace::attr_snapshot();
        let t0 = t;
        t = match i % 5 {
            0 | 1 => db.select_field(key, 0, &mut buf, t).1,
            2 => db.range_select(key, 16, t).1,
            3 => db.update(key, 0, &[i as u8; 8], t).1,
            _ => {
                let tt = db.update_no_commit(key, 0, &[i as u8; 8], t).1;
                db.commit(tt)
            }
        };
        let diff = trace::attr_snapshot().since(&before);
        assert_eq!(
            diff.total_ns(),
            t - t0,
            "op {i}: lane sum {diff:?} != end-to-end latency"
        );
    }
    // Checkpoint (WAL flush + dirty-page writeback) conserves too.
    let before = trace::attr_snapshot();
    let t2 = db.checkpoint(t);
    let diff = trace::attr_snapshot().since(&before);
    assert_eq!(diff.total_ns(), t2 - t, "checkpoint: {diff:?}");
    t2
}

#[test]
fn dram_bp_conserves_every_nanosecond() {
    let store = PageStore::new(PAGES);
    let mut db = Db::create(DramBp::new(PAGES as usize, 1 << 20, store), RECORD);
    db.load(rows());
    trace::reset();
    trace::enable_attribution(true);
    drive_conserved(&mut db);
    trace::reset();
}

#[test]
fn tiered_rdma_conserves_and_span_bytes_match_nic() {
    let slice = PAGES * PAGE_SIZE;
    let rdma = Rc::new(RefCell::new(RdmaPool::new(slice as usize, 1)));
    let store = PageStore::new(PAGES);
    // A small local tier forces steady remote page traffic.
    let mut db = Db::create(
        TieredRdmaBp::new(Rc::clone(&rdma), 0, 0, 32, 256 << 10, store),
        RECORD,
    );
    db.load(rows());
    rdma.borrow_mut().reset_link_counters();
    trace::reset();
    trace::enable_spans(true);
    trace::enable_attribution(true);
    drive_conserved(&mut db);
    trace::enable_spans(false);
    trace::enable_attribution(false);
    let events = trace::take_events();
    assert_eq!(trace::dropped_events(), 0, "ring overflowed at test scale");
    let span_bytes: u64 = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                SpanKind::RdmaPageIn | SpanKind::RdmaPageOut | SpanKind::RdmaMsg
            )
        })
        .map(|e| e.bytes)
        .sum();
    assert!(span_bytes > 0, "tiered run moved no remote pages");
    assert_eq!(
        span_bytes,
        rdma.borrow().total_bytes(),
        "traced RDMA bytes disagree with the NIC counters"
    );
    trace::reset();
}

fn cxl_bp_conserves(policy: bufferpool::PolicyKind) {
    let geo_size = 64 + PAGES * (64 + PAGE_SIZE);
    let pool_size = geo_size + 4096;
    let node_cfg = CxlNodeConfig {
        host: 0,
        cache_bytes: 256 << 10,
        capture: false,
        remote_numa: false,
        direct_attach: false,
    };
    let cxl = Rc::new(RefCell::new(CxlPool::new(pool_size as usize, [node_cfg])));
    let mut mgr = CxlMemoryManager::new(pool_size);
    let (lease, _) = mgr
        .allocate(NodeId(0), geo_size, SimTime::ZERO)
        .expect("pool sized for one node");
    let store = PageStore::new(PAGES);
    let mut db = Db::create(
        CxlBp::format_with_policy(
            Rc::clone(&cxl),
            NodeId(0),
            lease.offset,
            PAGES,
            store,
            policy,
        ),
        RECORD,
    );
    db.load(rows());
    cxl.borrow_mut().reset_link_counters();
    trace::reset();
    trace::enable_spans(true);
    trace::enable_attribution(true);
    drive_conserved(&mut db);
    trace::enable_spans(false);
    trace::enable_attribution(false);
    let events = trace::take_events();
    assert_eq!(trace::dropped_events(), 0, "ring overflowed at test scale");
    let span_bytes: u64 = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                SpanKind::CxlRead | SpanKind::CxlWrite | SpanKind::Clflush
            )
        })
        .map(|e| e.bytes)
        .sum();
    assert!(span_bytes > 0, "CXL run moved no cache lines");
    assert_eq!(
        span_bytes,
        cxl.borrow().switch_bytes(),
        "traced CXL bytes disagree with the switch counter"
    );
    assert_eq!(
        cxl.borrow().switch_bytes(),
        cxl.borrow().host_link_bytes(0),
        "single host: every switch byte crossed host 0's link"
    );
    trace::reset();
}

#[test]
fn cxl_bp_conserves_and_span_bytes_match_switch() {
    cxl_bp_conserves(bufferpool::PolicyKind::Lru);
}

#[test]
fn cxl_bp_conserves_under_clock_and_2q() {
    // The eviction policy decides *which* pages move, not how moves are
    // accounted — conservation and the byte cross-check must hold under
    // every pluggable policy.
    cxl_bp_conserves(bufferpool::PolicyKind::Clock);
    cxl_bp_conserves(bufferpool::PolicyKind::TwoQ);
}

/// The adaptive tiered pool conserves too, across DRAM hits, in-place
/// CXL service, storage faults, and — the interesting part — the epoch
/// sweep's batched promotions and demotions, which run *between*
/// operations and must account every migrated nanosecond to a lane.
#[test]
fn adaptive_pool_conserves_including_sweeps() {
    use polarcxlmem::{AdaptivePool, TierConfig};
    use storage::Lsn;
    let ps = 1024u64;
    let mut store = PageStore::with_page_size(128, ps);
    for _ in 0..128 {
        store.allocate();
    }
    let cxl = Rc::new(RefCell::new(CxlPool::single_host(
        1 << 20,
        1,
        64 << 10,
        false,
    )));
    let mut tier = TierConfig::standard(8, 24);
    // Sweep often enough for several epochs at test scale, but not so
    // often that aging outruns the op rate and no page ever stays hot.
    tier.epoch_ns = 500_000;
    let mut pool = AdaptivePool::new(cxl, NodeId(0), 0, tier, store);
    trace::reset();
    trace::enable_attribution(true);
    let mut t = SimTime::ZERO;
    let mut buf = [0u8; 16];
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..1_500u64 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Skewed traffic: mostly a small hot set (so the sweep finds
        // promotion candidates), with a cold tail forcing storage misses
        // and cascading demotions.
        // Decide hot-vs-cold and the page from *different* bits of the
        // LCG state — `rng % 8 == 0` correlates with `rng % 128`.
        let page = PageId(if !rng.is_multiple_of(8) {
            (rng >> 32) % 4
        } else {
            (rng >> 32) % 128
        });
        let before = trace::attr_snapshot();
        let t0 = t;
        t = pool.maybe_sweep(t0);
        t = if i % 3 == 0 {
            pool.write(page, 0, &[i as u8; 16], Lsn(i + 1), t).end
        } else {
            pool.read(page, 0, &mut buf, t).end
        };
        let diff = trace::attr_snapshot().since(&before);
        assert_eq!(
            diff.total_ns(),
            t - t0,
            "op {i}: lane sum {diff:?} != end-to-end latency (sweep included)"
        );
    }
    trace::enable_attribution(false);
    trace::reset();
    assert!(pool.sweeps() > 0, "epochs never elapsed at this scale");
    let s = pool.stats();
    assert!(s.tier_promotes > 0, "sweeps never promoted the hot set");
    assert!(s.tier_demotes > 0, "no demotions despite a cold tail");
}

#[test]
fn rdma_sharing_conserves_every_nanosecond() {
    let page_size = 1024u64;
    let rdma = Rc::new(RefCell::new(RdmaPool::new(1 << 20, 2)));
    let mut store = PageStore::with_page_size(64, page_size);
    for p in 0..32u64 {
        store.allocate();
        store.raw_write_page(PageId(p), &vec![(p % 251) as u8; page_size as usize]);
    }
    let store = Rc::new(RefCell::new(store));
    let mut server = RdmaDbp::new(Rc::clone(&rdma), 0, 0, 48, store);
    let mut a = RdmaSharingNode::new(NodeId(0), 0, 8, page_size);
    let mut b = RdmaSharingNode::new(NodeId(1), 1, 8, page_size);
    trace::reset();
    trace::enable_attribution(true);
    let mut t = SimTime::ZERO;
    let mut buf = [0u8; 64];
    for i in 0..200u64 {
        let page = PageId(i % 32);
        // Reader faults the page in, writer mutates and publishes; the
        // publish fans an invalidation message out to the reader.
        let before = trace::attr_snapshot();
        let t0 = t;
        t = a.read(&mut server, page, 0, &mut buf, t);
        t = b.write(&mut server, page, 0, &[i as u8; 16], t);
        let (targets, t2) = b.publish(&mut server, page, t);
        t = t2;
        for n in &targets {
            assert_eq!(*n, NodeId(0));
            a.invalidate_local(page);
        }
        let diff = trace::attr_snapshot().since(&before);
        assert_eq!(
            diff.total_ns(),
            t - t0,
            "round {i}: lane sum {diff:?} != end-to-end latency"
        );
    }
    assert!(a.stats().invalidations > 0, "protocol never invalidated");
    trace::reset();
}

/// The run-level attribution surfaced by the pooling harness conserves
/// too: the lane sums equal the total of all per-query latencies
/// recorded in the run's histogram window.
#[test]
fn harness_attribution_matches_histogram_total() {
    use workloads::{run_pooling, PoolKind, PoolingConfig, SysbenchKind};
    let mut cfg = PoolingConfig::standard(PoolKind::Cxl, SysbenchKind::ReadWrite, 1);
    cfg.table_size = 4_000;
    cfg.duration = SimTime::from_millis(10);
    trace::reset();
    trace::enable_attribution(true);
    let r = run_pooling(&cfg);
    trace::enable_attribution(false);
    trace::reset();
    let attr = r.attribution.expect("attribution enabled");
    // Workers run past the window edge; the histogram only records
    // queries that *finished* inside it, so attribution (which sees
    // every simulated ns) must be >= the histogram total and close.
    let hist_total: u64 =
        (r.metrics.avg_latency_us * 1e3 * r.metrics.latency.count() as f64) as u64;
    assert!(
        attr.total_ns() >= hist_total * 99 / 100,
        "attribution {} < histogram {}",
        attr.total_ns(),
        hist_total
    );
    // And the registry mirrors the same numbers.
    assert_eq!(
        r.registry.get("attr_total_ns"),
        Some(simkit::stats::MetricValue::Int(attr.total_ns())),
    );
}

/// Attribution survives barrier-parallel stepping: each node's lane
/// totals accumulate in its own detached tracer state on whichever
/// worker thread steps the node, and re-land on the driver at the merge
/// in fixed node order — so a parallel-stepped sharing run attributes
/// exactly the same simulated nanoseconds, lane by lane, as the serial
/// run of the same config. No nanosecond is lost or double-counted at
/// the barrier hand-offs.
#[test]
fn parallel_stepped_sharing_attribution_is_conserved() {
    use workloads::sharing::{point_update_gen, run_sharing, SharingConfig, SharingSystem};
    let run = |threads: usize| {
        let mut c = SharingConfig::standard(SharingSystem::Cxl, 4);
        c.layout.rows_per_group = 1_000;
        c.duration = SimTime::from_millis(20);
        c.host_threads = threads;
        let layout = c.layout;
        trace::reset();
        trace::enable_attribution(true);
        let r = run_sharing(&c, point_update_gen(layout, 40));
        trace::enable_attribution(false);
        let attr = trace::attr_snapshot();
        trace::reset();
        (r, attr)
    };
    let (r1, a1) = run(1);
    let (r4, a4) = run(4);
    assert!(a1.total_ns() > 0, "run attributed no nanoseconds");
    assert_eq!(r1, r4, "worker count changed simulation results");
    assert_eq!(a1, a4, "parallel stepping changed the lane totals");
}
