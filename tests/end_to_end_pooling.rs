//! End-to-end pooling integration: the full stack (workload generator →
//! engine → B+tree → buffer pool → fabric models) across all three pool
//! designs, checking the paper's qualitative claims at test scale.

use polardb_cxl_repro::prelude::*;
use simkit::SimTime;

fn cfg(kind: PoolKind, n: usize) -> PoolingConfig {
    let mut c = PoolingConfig::standard(kind, SysbenchKind::PointSelect, n);
    c.table_size = 8_000;
    c.duration = SimTime::from_millis(50);
    c
}

#[test]
fn cxl_matches_dram_at_one_instance() {
    let d = run_pooling(&cfg(PoolKind::Dram, 1));
    let c = run_pooling(&cfg(PoolKind::Cxl, 1));
    let ratio = c.metrics.qps / d.metrics.qps;
    // Paper Figure 3: within ~7-10%.
    assert!((0.85..=1.02).contains(&ratio), "CXL/DRAM ratio {ratio}");
}

#[test]
fn rdma_saturates_but_cxl_scales() {
    let r1 = run_pooling(&cfg(PoolKind::TieredRdma, 1));
    let r6 = run_pooling(&cfg(PoolKind::TieredRdma, 6));
    let c1 = run_pooling(&cfg(PoolKind::Cxl, 1));
    let c6 = run_pooling(&cfg(PoolKind::Cxl, 6));
    let rdma_scaling = r6.metrics.qps / r1.metrics.qps;
    let cxl_scaling = c6.metrics.qps / c1.metrics.qps;
    assert!(cxl_scaling > 5.0, "CXL must scale ~linearly: {cxl_scaling}");
    assert!(
        rdma_scaling < 4.0,
        "RDMA must saturate well below linear: {rdma_scaling}"
    );
    // And the NIC must actually be the reason: near its 12 GB/s cap.
    assert!(
        r6.metrics.interconnect_gbps > 8.0,
        "NIC at {} GB/s",
        r6.metrics.interconnect_gbps
    );
}

#[test]
fn rdma_read_amplification_is_visible() {
    let r = run_pooling(&cfg(PoolKind::TieredRdma, 1));
    let c = run_pooling(&cfg(PoolKind::Cxl, 1));
    // Point selects read ~hundreds of bytes; tiered RDMA moves whole
    // pages. Its per-query byte cost must dwarf CXL's.
    let rdma_bytes_per_q = r.metrics.interconnect_gbps / r.metrics.qps;
    let cxl_bytes_per_q = c.metrics.interconnect_gbps / c.metrics.qps;
    assert!(
        rdma_bytes_per_q > 4.0 * cxl_bytes_per_q,
        "amplification: rdma {rdma_bytes_per_q} vs cxl {cxl_bytes_per_q}"
    );
}

#[test]
fn latency_rises_only_under_saturation() {
    let c1 = run_pooling(&cfg(PoolKind::Cxl, 1));
    let c6 = run_pooling(&cfg(PoolKind::Cxl, 6));
    let r1 = run_pooling(&cfg(PoolKind::TieredRdma, 1));
    let r6 = run_pooling(&cfg(PoolKind::TieredRdma, 6));
    // CXL latency stays flat; RDMA latency grows with queueing.
    assert!(c6.metrics.avg_latency_us < 1.2 * c1.metrics.avg_latency_us);
    assert!(r6.metrics.avg_latency_us > 1.5 * r1.metrics.avg_latency_us);
}

#[test]
fn mixed_workload_runs_on_every_pool() {
    for kind in [PoolKind::Dram, PoolKind::TieredRdma, PoolKind::Cxl] {
        let mut c = cfg(kind, 2);
        c.workload = SysbenchKind::ReadWrite;
        let r = run_pooling(&c);
        assert!(r.metrics.qps > 0.0, "{kind:?}");
        assert_eq!(r.per_instance_qps.len(), 2);
        assert!(r.per_instance_qps.iter().all(|&q| q > 0.0));
    }
}
