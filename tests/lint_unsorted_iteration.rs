//! Determinism guard: no unsorted hash-container iteration on simulator
//! state.
//!
//! The simulator's hash maps (`simkit::FastMap`/`FastSet`, and any std
//! `HashMap`/`HashSet`) make NO iteration-order promise, and with the
//! std default hasher the order even varies per process. Iterating one
//! directly in a path that touches simulated state (flush order, message
//! order, ...) silently breaks run-to-run determinism — the property the
//! whole harness is built on (serial == parallel, bit-identical).
//!
//! This test scans the simulator crates' sources for direct iteration
//! over hash-typed struct fields and fails unless the site either sorts
//! the collected keys within the next few lines or carries an explicit
//! `// lint: order-insensitive` marker (for sites whose effect provably
//! does not depend on order).
//!
//! A textual lint is deliberately low-tech: it has no false negatives
//! for the patterns it knows (`.iter()`, `.keys()`, `.values()`,
//! `.iter_mut()`, `.values_mut()`, `.drain(`, `for .. in &self.field`)
//! and the rare false positive is silenced with the marker comment.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Crates whose sources are scanned (the ones holding simulated state).
/// simkit is included for the telemetry/alerting pipeline: window rows,
/// alert logs and health maps feed bit-deterministic reports, so any
/// hash-order iteration there is just as corrupting as in the simulator.
const SCANNED: &[&str] = &[
    "crates/memsim/src",
    "crates/bufferpool/src",
    "crates/core/src",
    "crates/simkit/src",
];

/// Iteration methods that surface hash order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
];

/// How many following lines may contain the `sort` that fixes the order.
const SORT_WINDOW: usize = 3;

const MARKER: &str = "lint: order-insensitive";

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Field names declared with a hash-container type in `src`, e.g.
/// `map: FastMap<PageId, u32>,` -> `map`.
fn hash_fields(src: &str) -> Vec<String> {
    let mut fields = Vec::new();
    for line in src.lines() {
        let line = line.trim_start();
        let line = line.strip_prefix("pub ").unwrap_or(line);
        let Some((name, ty)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') || name.is_empty() {
            continue;
        }
        let ty = ty.trim_start();
        let is_hash = ["FastMap<", "FastSet<", "HashMap<", "HashSet<"]
            .iter()
            .any(|h| ty.starts_with(h) || ty.contains(&format!("::{h}")));
        if is_hash {
            fields.push(name.to_string());
        }
    }
    fields.sort();
    fields.dedup();
    fields
}

/// Byte offset where test code starts (lint only covers non-test code).
fn test_code_start(src: &str) -> usize {
    src.find("#[cfg(test)]").unwrap_or(src.len())
}

fn check_file(path: &Path, violations: &mut String) {
    let src = std::fs::read_to_string(path).expect("readable source file");
    let fields = hash_fields(&src);
    if fields.is_empty() {
        return;
    }
    let code = &src[..test_code_start(&src)];
    let lines: Vec<&str> = code.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let hit = fields.iter().any(|f| {
            ITER_METHODS
                .iter()
                .any(|m| line.contains(&format!(".{f}{m}")))
                || line.contains(&format!("in &self.{f}"))
                || line.contains(&format!("in &mut self.{f}"))
                || line.contains(&format!("in self.{f}"))
        });
        if !hit {
            continue;
        }
        // Sorted shortly after (collect-then-sort idiom), or explicitly
        // marked order-insensitive nearby?
        let window = &lines[i.saturating_sub(1)..(i + 1 + SORT_WINDOW).min(lines.len())];
        let ok = window
            .iter()
            .any(|l| l.contains("sort") || l.contains(MARKER));
        if !ok {
            let _ = writeln!(
                violations,
                "{}:{}: unsorted hash iteration: {}",
                path.display(),
                i + 1,
                line.trim()
            );
        }
    }
}

#[test]
fn no_unsorted_hash_iteration_in_simulator_state() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in SCANNED {
        rust_files(&root.join(dir), &mut files);
    }
    files.sort();
    assert!(
        files.len() >= 10,
        "lint scanned suspiciously few files ({}) — moved sources?",
        files.len()
    );
    let mut violations = String::new();
    for f in &files {
        check_file(f, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "hash-container iteration without a sort within {SORT_WINDOW} lines \
         (sort the collected keys, or add `// {MARKER}` if order provably \
         cannot affect simulated state):\n{violations}"
    );
}

#[test]
fn lint_catches_a_seeded_violation() {
    // The lint must actually fire on the pattern it claims to catch.
    let src = "struct S {\n    map: FastMap<u64, u32>,\n}\n\
               impl S { fn f(&self) { for v in self.map.values() { drop(v); } } }\n";
    let dir = std::env::temp_dir().join("lint_unsorted_seed");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("seeded.rs");
    std::fs::write(&path, src).unwrap();
    let mut violations = String::new();
    check_file(&path, &mut violations);
    std::fs::remove_file(&path).ok();
    assert!(
        violations.contains("seeded.rs:4"),
        "lint failed to flag a direct map iteration: {violations:?}"
    );
}
