//! Failure injection: repeated crash/recover cycles on a CXL-resident
//! database under a randomized workload, verifying contents against a
//! model after every recovery. This is the strongest end-to-end check
//! of PolarRecv's correctness: any page wrongly trusted, wrongly
//! rebuilt, or lost by the durable-metadata protocol shows up as a
//! content mismatch.

use polardb_cxl_repro::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

const REC: u16 = 120;
const KEYS: u64 = 300;

fn build() -> Db<CxlBp> {
    let store = PageStore::with_page_size(512, 2048);
    let cxl = Rc::new(RefCell::new(CxlPool::single_host(
        4 << 20,
        1,
        1 << 20,
        false,
    )));
    let mut db = Db::create(CxlBp::format(cxl, NodeId(0), 0, 512, store), REC);
    db.load((1..=KEYS).map(|k| (k, vec![(k % 250) as u8; REC as usize])));
    db
}

#[test]
fn five_crashes_cannot_corrupt_committed_state() {
    let mut db = build();
    let mut model: BTreeMap<u64, Vec<u8>> = (1..=KEYS)
        .map(|k| (k, vec![(k % 250) as u8; REC as usize]))
        .collect();
    let mut rng = SimRng::seed_from_u64(99);
    let mut now = SimTime::ZERO;
    let mut next_key = KEYS + 1;

    for round in 0..5 {
        // A burst of committed work.
        for _ in 0..120 {
            match rng.gen_range(0..4) {
                0 => {
                    let k = rng.gen_range(1..next_key);
                    let v = [rng.gen::<u8>(); 24];
                    let (found, t) = db.update(k, 16, &v, now);
                    now = t;
                    if found {
                        model.get_mut(&k).unwrap()[16..40].copy_from_slice(&v);
                    } else {
                        assert!(!model.contains_key(&k));
                    }
                }
                1 => {
                    let rec = vec![rng.gen::<u8>(); REC as usize];
                    let (ins, t) = db.insert(next_key, &rec, now);
                    now = t;
                    assert!(ins);
                    model.insert(next_key, rec);
                    next_key += 1;
                }
                2 => {
                    let k = rng.gen_range(1..next_key);
                    let (found, t) = db.delete(k, now);
                    now = t;
                    assert_eq!(found, model.remove(&k).is_some());
                }
                _ => {
                    let k = rng.gen_range(1..next_key);
                    let (found, t) = db.point_select(k, now);
                    now = t;
                    assert_eq!(found, model.contains_key(&k), "key {k}");
                }
            }
        }
        // Occasionally checkpoint so replay floors vary across rounds.
        if round % 2 == 1 {
            now = db.checkpoint(now);
        }
        // Crash + PolarRecv.
        db.crash();
        let report = recover_polar(&mut db, now);
        now = report.done;
        // Full content verification.
        for (k, v) in &model {
            let (got, _) = db.table.get(&mut db.pool, *k, SimTime::ZERO);
            assert_eq!(got.as_ref(), Some(v), "round {round}, key {k}");
        }
        assert_eq!(
            db.table.check_invariants(&mut db.pool),
            model.len() as u64,
            "round {round} row count"
        );
    }
}

#[test]
fn five_crashes_on_tiered_rdma_cannot_corrupt_committed_state() {
    // Same storm against the RDMA-baseline design: local frames die with
    // the host, remote memory survives, and ARIES replay (served from
    // remote where resident) must restore exactly the committed state.
    let store = PageStore::with_page_size(512, 2048);
    let rdma = Rc::new(RefCell::new(RdmaPool::new(512 * 2048, 1)));
    let mut db = Db::create(TieredRdmaBp::new(rdma, 0, 0, 24, 1 << 20, store), REC);
    db.load((1..=KEYS).map(|k| (k, vec![(k % 250) as u8; REC as usize])));
    let mut model: BTreeMap<u64, Vec<u8>> = (1..=KEYS)
        .map(|k| (k, vec![(k % 250) as u8; REC as usize]))
        .collect();
    let mut rng = SimRng::seed_from_u64(77);
    let mut now = SimTime::ZERO;
    let mut next_key = KEYS + 1;

    for round in 0..5 {
        for _ in 0..120 {
            match rng.gen_range(0..4) {
                0 => {
                    let k = rng.gen_range(1..next_key);
                    let v = [rng.gen::<u8>(); 24];
                    let (found, t) = db.update(k, 16, &v, now);
                    now = t;
                    if found {
                        model.get_mut(&k).unwrap()[16..40].copy_from_slice(&v);
                    } else {
                        assert!(!model.contains_key(&k));
                    }
                }
                1 => {
                    let rec = vec![rng.gen::<u8>(); REC as usize];
                    let (ins, t) = db.insert(next_key, &rec, now);
                    now = t;
                    assert!(ins);
                    model.insert(next_key, rec);
                    next_key += 1;
                }
                2 => {
                    let k = rng.gen_range(1..next_key);
                    let (found, t) = db.delete(k, now);
                    now = t;
                    assert_eq!(found, model.remove(&k).is_some());
                }
                _ => {
                    let k = rng.gen_range(1..next_key);
                    let (found, t) = db.point_select(k, now);
                    now = t;
                    assert_eq!(found, model.contains_key(&k), "key {k}");
                }
            }
        }
        if round % 2 == 1 {
            now = db.checkpoint(now);
        }
        db.crash();
        let report = recover_replay(&mut db, "rdma-based", now);
        now = report.done;
        for (k, v) in &model {
            let (got, _) = db.table.get(&mut db.pool, *k, SimTime::ZERO);
            assert_eq!(got.as_ref(), Some(v), "round {round}, key {k}");
        }
        assert_eq!(
            db.table.check_invariants(&mut db.pool),
            model.len() as u64,
            "round {round} row count"
        );
    }
}

#[test]
fn recovery_after_torn_latch_rebuilds_from_redo() {
    // Simulate dying inside a write-latch window: the page must be
    // rebuilt from storage + durable redo even though its CXL bytes
    // contain the half-applied update.
    let mut db = build();
    let t = db.update(7, 0, &[0x31; 8], SimTime::ZERO).1; // committed
                                                          // Start an update but "die" before unlatch: write data + latch
                                                          // without ever flushing or clearing the latch.
    use polardb_cxl_repro::bufferpool::BufferPool;
    let t2 = db.pool.set_latch(PageId(0), true, t); // any page: use the real one below
    let _ = t2;
    // Find the page holding key 7 by writing through the engine-level
    // API but skipping the unlatch: emulate via raw latch + direct write.
    let (_, t3) = db
        .table
        .update_field(&mut db.pool, &mut db.wal, 7, 0, &[0x32; 8], t);
    // The mtr committed (latch cleared) but its redo is NOT durable —
    // PolarRecv must detect the too-new page via the LSN check.
    db.crash();
    let report = recover_polar(&mut db, t3);
    assert!(report.pages_rebuilt >= 1, "too-new page must be rebuilt");
    let (got, _) = db.table.get(&mut db.pool, 7, SimTime::ZERO);
    assert_eq!(
        &got.unwrap()[0..8],
        &[0x31; 8],
        "only durable state survives"
    );
}

// ---------------------------------------------------------------------------
// Fusion-cluster storm: rotating node deaths with reincarnation.
// ---------------------------------------------------------------------------

const FS_NODES: usize = 3;
const FS_PPG: u64 = 6; // pages per group: one private group per node + shared
const FS_PAGES: u64 = (FS_NODES as u64 + 1) * FS_PPG;
const FS_PAGE: u64 = 2048;

fn fs_ppage(node: usize, i: u64) -> PageId {
    PageId(node as u64 * FS_PPG + i)
}
fn fs_spage(i: u64) -> PageId {
    PageId(FS_NODES as u64 * FS_PPG + i)
}
fn fs_flag_base(node: usize) -> u64 {
    FS_PAGES * FS_PAGE + node as u64 * FS_PAGES * 16
}
fn fs_epoch_base() -> u64 {
    FS_PAGES * FS_PAGE + FS_NODES as u64 * FS_PAGES * 16
}

/// One seeded statement on a live node: 60% guarded write+publish, else
/// a read verified against the oracle on the spot.
fn fs_op(
    rng: &mut SimRng,
    nodes: &mut [SharingNode],
    server: &mut FusionServer,
    model: &mut BTreeMap<(PageId, u64), u8>,
    t: SimTime,
) -> SimTime {
    let node = rng.gen_range(0..FS_NODES as u32) as usize;
    let page = if rng.gen_range(0..100u32) < 30 {
        fs_spage(rng.gen_range(0..FS_PPG))
    } else {
        fs_ppage(node, rng.gen_range(0..FS_PPG))
    };
    let off = 64 + rng.gen_range(0..8u64) * 64;
    if rng.gen_range(0..100u32) < 60 {
        let val = rng.gen_range(1..=250u32) as u8;
        let t2 = nodes[node]
            .guarded_write(server, page, off, &[val; 32], t)
            .expect("live node writes");
        let t3 = nodes[node]
            .guarded_publish(server, page, t2)
            .expect("live node publishes");
        model.insert((page, off), val);
        t3
    } else {
        let mut buf = [0u8; 32];
        let t2 = nodes[node].read(server, page, off, &mut buf, t);
        let want = *model.get(&(page, off)).unwrap_or(&0);
        assert_eq!(buf, [want; 32], "node {node} read-your-cluster-writes");
        t2
    }
}

/// Standby takeover racing the reclaimer: a standby adopts the dead
/// node's page range in chunks while `reclaim_node` lands at a seeded
/// position in the interleaving. A page adopted *before* the reclaim is
/// pinned by the standby (slot transfers, never recycled); a page the
/// reclaimer reaches first is recycled exactly once and the late adopt
/// simply skips it. Whatever the interleaving, slots are conserved,
/// nothing double-recycles, and every surviving page still serves the
/// dead node's published bytes.
#[test]
fn adopt_range_vs_reclaim_interleaving_never_double_recycles() {
    use polardb_cxl_repro::memsim::CxlNodeConfig;
    use std::collections::BTreeSet;

    for case in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(0xAD07 + case);
        let pool = fs_epoch_base() + 4096;
        let cfgs: Vec<CxlNodeConfig> = (0..FS_NODES + 1)
            .map(|host| CxlNodeConfig {
                host,
                cache_bytes: 1 << 20,
                capture: true,
                remote_numa: false,
                direct_attach: false,
            })
            .collect();
        let cxl = Rc::new(RefCell::new(CxlPool::new(pool as usize, &cfgs)));
        let mut store = PageStore::with_page_size(FS_PAGES, FS_PAGE);
        for _ in 0..FS_PAGES {
            store.allocate();
        }
        let store = Rc::new(RefCell::new(store));
        let mut server =
            FusionServer::new(Rc::clone(&cxl), NodeId(FS_NODES), 0, FS_PAGES as u32, store);
        let mut nodes: Vec<SharingNode> = (0..FS_NODES)
            .map(|i| {
                server.register_node(NodeId(i), fs_flag_base(i));
                SharingNode::new(NodeId(i), fs_flag_base(i), FS_PAGE)
            })
            .collect();

        // The doomed primary (node 0) publishes a value into each of its
        // private pages; a seeded prefix is also read by node 1, so
        // those slots are co-pinned and must survive any interleaving.
        let mut t = SimTime::ZERO;
        for p in 0..FS_PPG {
            let page = fs_ppage(0, p);
            let t2 = nodes[0].write(&mut server, page, 64, &[p as u8 + 1; 32], t);
            t = nodes[0].publish(&mut server, page, t2);
        }
        let pre_shared = rng.gen_range(0..=FS_PPG / 2);
        for p in 0..pre_shared {
            let mut buf = [0u8; 32];
            t = nodes[1].read(&mut server, fs_ppage(0, p), 64, &mut buf, t);
        }

        // Node 0 dies. The standby (node 2) adopts its range in seeded
        // chunks, with the reclaimer interleaved at a seeded position.
        cxl.borrow_mut().crash_node(NodeId(0));
        let mut chunks: Vec<(u64, u64)> = Vec::new();
        let mut at = 0u64;
        while at < FS_PPG {
            let len = (1 + rng.gen_range(0..3u64)).min(FS_PPG - at);
            chunks.push((at, len));
            at += len;
        }
        let reclaim_at = rng.gen_range(0..=chunks.len() as u64) as usize;
        let mut adopted_before: BTreeSet<u64> = BTreeSet::new();
        let mut reclaimed = false;
        for (k, &(from, len)) in chunks.iter().enumerate() {
            if k == reclaim_at {
                t = server.reclaim_node(NodeId(0), t);
                reclaimed = true;
            }
            let (_, t2) = nodes[2].adopt(&mut server, fs_ppage(0, from), len, t);
            t = t2;
            if !reclaimed {
                adopted_before.extend(from..from + len);
            }
        }
        if !reclaimed {
            t = server.reclaim_node(NodeId(0), t);
        }

        // Exactly the sole-active pages the reclaimer reached first are
        // recycled — once. Everything else is pinned (co-tenant or
        // standby) and conserved.
        let expect_recycled = (pre_shared..FS_PPG)
            .filter(|p| !adopted_before.contains(p))
            .count();
        let stats = server.stats();
        assert_eq!(
            stats.reclaimed_slots as usize, expect_recycled,
            "case {case}: pre_shared {pre_shared}, adopted_before {adopted_before:?}"
        );
        assert_eq!(
            stats.reclaimed_flags, FS_PPG,
            "case {case}: the dead node was active on its whole group"
        );
        assert_eq!(
            server.pages_in_use() + server.free_slots(),
            FS_PAGES as usize,
            "case {case}: DBP slot conservation"
        );

        // Surviving pages still serve the dead node's published bytes
        // through the standby; recycled ones refill from storage (zeros)
        // — proof the slot really was freed, not aliased.
        for p in 0..FS_PPG {
            let survives = p < pre_shared || adopted_before.contains(&p);
            let mut buf = [0u8; 32];
            t = nodes[2].read(&mut server, fs_ppage(0, p), 64, &mut buf, t);
            let want = if survives {
                [p as u8 + 1; 32]
            } else {
                [0u8; 32]
            };
            assert_eq!(buf, want, "case {case}: page {p} (survives={survives})");
        }

        // A second reclaim of the same dead node is a no-op: its active
        // entries are gone, so nothing can recycle twice.
        let before = server.stats();
        t = server.reclaim_node(NodeId(0), t);
        let after = server.stats();
        assert_eq!(after.reclaimed_slots, before.reclaimed_slots, "case {case}");
        assert_eq!(after.reclaimed_flags, before.reclaimed_flags, "case {case}");
        assert_eq!(
            server.pages_in_use() + server.free_slots(),
            FS_PAGES as usize,
            "case {case}: conservation after re-reclaim"
        );
        let _ = t;
    }
}

/// Five rounds; each kills a rotating primary mid-burst (its CPU cache
/// vanishes, the CXL pool survives), fences + reclaims it, proves the
/// dead incarnation's handle stays fenced out, then reincarnates the
/// same NodeId at the bumped epoch on the now-cold cache. Every round
/// ends with a full content verification — shared pages through every
/// node's coherency path, private pages through their owner — plus DBP
/// slot conservation.
#[test]
fn fusion_cluster_storm_heals_after_each_node_crash() {
    use polardb_cxl_repro::memsim::CxlNodeConfig;
    use polardb_cxl_repro::polarcxlmem::{FencingPolicy, SharingNode};

    let pool = fs_epoch_base() + 4096;
    let cfgs: Vec<CxlNodeConfig> = (0..FS_NODES + 1)
        .map(|host| CxlNodeConfig {
            host,
            cache_bytes: 1 << 20,
            capture: true,
            remote_numa: false,
            direct_attach: false,
        })
        .collect();
    let cxl = Rc::new(RefCell::new(CxlPool::new(pool as usize, &cfgs)));
    let mut store = PageStore::with_page_size(FS_PAGES, FS_PAGE);
    for _ in 0..FS_PAGES {
        store.allocate();
    }
    let store = Rc::new(RefCell::new(store));
    let mut server =
        FusionServer::new(Rc::clone(&cxl), NodeId(FS_NODES), 0, FS_PAGES as u32, store);
    server.enable_fencing(FencingPolicy::Epoch, fs_epoch_base());
    let mut nodes: Vec<SharingNode> = (0..FS_NODES)
        .map(|i| {
            let (grant, _) = server.register_node_fenced(NodeId(i), fs_flag_base(i), SimTime::ZERO);
            let mut n = SharingNode::new(NodeId(i), fs_flag_base(i), FS_PAGE);
            n.enable_fencing(fs_epoch_base(), grant);
            n
        })
        .collect();

    let mut rng = SimRng::seed_from_u64(0x570B);
    let mut model: BTreeMap<(PageId, u64), u8> = BTreeMap::new();
    let mut t = SimTime::ZERO;
    for round in 0..5usize {
        let d = round % FS_NODES;
        for _ in 0..60 {
            t = fs_op(&mut rng, &mut nodes, &mut server, &mut model, t);
        }

        // Death: volatile state gone, lease + fenced epoch survive.
        cxl.borrow_mut().crash_node(NodeId(d));
        t = server.fence_node(NodeId(d), t);
        t = server.reclaim_node(NodeId(d), t);
        // The dead node's private pages were sole-active: recycled, and
        // their unpublished history reverts to storage state (zeros).
        model.retain(|(page, _), _| {
            !(fs_ppage(d, 0).0..fs_ppage(d, 0).0 + FS_PPG).contains(&page.0)
        });

        // The dead incarnation is a zombie now: its guarded stores and
        // publishes must bounce off the bumped epoch word.
        let zerr = nodes[d]
            .guarded_write(&mut server, fs_spage(0), 64, &[0xEE; 32], t)
            .expect_err("zombie write must be fenced");
        assert_eq!(zerr.observed_epoch, zerr.grant_epoch + 1, "round {round}");
        assert!(
            nodes[d]
                .guarded_publish(&mut server, fs_spage(0), t)
                .is_err(),
            "zombie publish must be fenced (round {round})"
        );

        // Reincarnate the same NodeId at the bumped epoch: a fresh
        // sharing node over the now-cold cache.
        let (grant, t2) = server.register_node_fenced(NodeId(d), fs_flag_base(d), t);
        t = t2;
        let mut fresh = SharingNode::new(NodeId(d), fs_flag_base(d), FS_PAGE);
        fresh.enable_fencing(fs_epoch_base(), grant);
        nodes[d] = fresh;

        for _ in 0..30 {
            t = fs_op(&mut rng, &mut nodes, &mut server, &mut model, t);
        }

        // Full verification: private pages through their owner, shared
        // pages through EVERY node's coherency path.
        for (&(page, off), &want) in &model {
            let readers: Vec<usize> = if page.0 < FS_NODES as u64 * FS_PPG {
                vec![(page.0 / FS_PPG) as usize]
            } else {
                (0..FS_NODES).collect()
            };
            for r in readers {
                let mut buf = [0u8; 32];
                t = nodes[r].read(&mut server, page, off, &mut buf, t);
                assert_eq!(
                    buf, [want; 32],
                    "round {round}: node {r} page {} off {off}",
                    page.0
                );
            }
        }
        let stats = server.stats();
        assert_eq!(stats.fenced_nodes as usize, round + 1, "round {round}");
        assert_eq!(
            server.pages_in_use() + server.free_slots(),
            FS_PAGES as usize,
            "round {round}: DBP slot conservation"
        );
    }
}
