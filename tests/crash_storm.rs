//! Failure injection: repeated crash/recover cycles on a CXL-resident
//! database under a randomized workload, verifying contents against a
//! model after every recovery. This is the strongest end-to-end check
//! of PolarRecv's correctness: any page wrongly trusted, wrongly
//! rebuilt, or lost by the durable-metadata protocol shows up as a
//! content mismatch.

use polardb_cxl_repro::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

const REC: u16 = 120;
const KEYS: u64 = 300;

fn build() -> Db<CxlBp> {
    let store = PageStore::with_page_size(512, 2048);
    let cxl = Rc::new(RefCell::new(CxlPool::single_host(
        4 << 20,
        1,
        1 << 20,
        false,
    )));
    let mut db = Db::create(CxlBp::format(cxl, NodeId(0), 0, 512, store), REC);
    db.load((1..=KEYS).map(|k| (k, vec![(k % 250) as u8; REC as usize])));
    db
}

#[test]
fn five_crashes_cannot_corrupt_committed_state() {
    let mut db = build();
    let mut model: BTreeMap<u64, Vec<u8>> = (1..=KEYS)
        .map(|k| (k, vec![(k % 250) as u8; REC as usize]))
        .collect();
    let mut rng = SimRng::seed_from_u64(99);
    let mut now = SimTime::ZERO;
    let mut next_key = KEYS + 1;

    for round in 0..5 {
        // A burst of committed work.
        for _ in 0..120 {
            match rng.gen_range(0..4) {
                0 => {
                    let k = rng.gen_range(1..next_key);
                    let v = [rng.gen::<u8>(); 24];
                    let (found, t) = db.update(k, 16, &v, now);
                    now = t;
                    if found {
                        model.get_mut(&k).unwrap()[16..40].copy_from_slice(&v);
                    } else {
                        assert!(!model.contains_key(&k));
                    }
                }
                1 => {
                    let rec = vec![rng.gen::<u8>(); REC as usize];
                    let (ins, t) = db.insert(next_key, &rec, now);
                    now = t;
                    assert!(ins);
                    model.insert(next_key, rec);
                    next_key += 1;
                }
                2 => {
                    let k = rng.gen_range(1..next_key);
                    let (found, t) = db.delete(k, now);
                    now = t;
                    assert_eq!(found, model.remove(&k).is_some());
                }
                _ => {
                    let k = rng.gen_range(1..next_key);
                    let (found, t) = db.point_select(k, now);
                    now = t;
                    assert_eq!(found, model.contains_key(&k), "key {k}");
                }
            }
        }
        // Occasionally checkpoint so replay floors vary across rounds.
        if round % 2 == 1 {
            now = db.checkpoint(now);
        }
        // Crash + PolarRecv.
        db.crash();
        let report = recover_polar(&mut db, now);
        now = report.done;
        // Full content verification.
        for (k, v) in &model {
            let (got, _) = db.table.get(&mut db.pool, *k, SimTime::ZERO);
            assert_eq!(got.as_ref(), Some(v), "round {round}, key {k}");
        }
        assert_eq!(
            db.table.check_invariants(&mut db.pool),
            model.len() as u64,
            "round {round} row count"
        );
    }
}

#[test]
fn five_crashes_on_tiered_rdma_cannot_corrupt_committed_state() {
    // Same storm against the RDMA-baseline design: local frames die with
    // the host, remote memory survives, and ARIES replay (served from
    // remote where resident) must restore exactly the committed state.
    let store = PageStore::with_page_size(512, 2048);
    let rdma = Rc::new(RefCell::new(RdmaPool::new(512 * 2048, 1)));
    let mut db = Db::create(TieredRdmaBp::new(rdma, 0, 0, 24, 1 << 20, store), REC);
    db.load((1..=KEYS).map(|k| (k, vec![(k % 250) as u8; REC as usize])));
    let mut model: BTreeMap<u64, Vec<u8>> = (1..=KEYS)
        .map(|k| (k, vec![(k % 250) as u8; REC as usize]))
        .collect();
    let mut rng = SimRng::seed_from_u64(77);
    let mut now = SimTime::ZERO;
    let mut next_key = KEYS + 1;

    for round in 0..5 {
        for _ in 0..120 {
            match rng.gen_range(0..4) {
                0 => {
                    let k = rng.gen_range(1..next_key);
                    let v = [rng.gen::<u8>(); 24];
                    let (found, t) = db.update(k, 16, &v, now);
                    now = t;
                    if found {
                        model.get_mut(&k).unwrap()[16..40].copy_from_slice(&v);
                    } else {
                        assert!(!model.contains_key(&k));
                    }
                }
                1 => {
                    let rec = vec![rng.gen::<u8>(); REC as usize];
                    let (ins, t) = db.insert(next_key, &rec, now);
                    now = t;
                    assert!(ins);
                    model.insert(next_key, rec);
                    next_key += 1;
                }
                2 => {
                    let k = rng.gen_range(1..next_key);
                    let (found, t) = db.delete(k, now);
                    now = t;
                    assert_eq!(found, model.remove(&k).is_some());
                }
                _ => {
                    let k = rng.gen_range(1..next_key);
                    let (found, t) = db.point_select(k, now);
                    now = t;
                    assert_eq!(found, model.contains_key(&k), "key {k}");
                }
            }
        }
        if round % 2 == 1 {
            now = db.checkpoint(now);
        }
        db.crash();
        let report = recover_replay(&mut db, "rdma-based", now);
        now = report.done;
        for (k, v) in &model {
            let (got, _) = db.table.get(&mut db.pool, *k, SimTime::ZERO);
            assert_eq!(got.as_ref(), Some(v), "round {round}, key {k}");
        }
        assert_eq!(
            db.table.check_invariants(&mut db.pool),
            model.len() as u64,
            "round {round} row count"
        );
    }
}

#[test]
fn recovery_after_torn_latch_rebuilds_from_redo() {
    // Simulate dying inside a write-latch window: the page must be
    // rebuilt from storage + durable redo even though its CXL bytes
    // contain the half-applied update.
    let mut db = build();
    let t = db.update(7, 0, &[0x31; 8], SimTime::ZERO).1; // committed
                                                          // Start an update but "die" before unlatch: write data + latch
                                                          // without ever flushing or clearing the latch.
    use polardb_cxl_repro::bufferpool::BufferPool;
    let t2 = db.pool.set_latch(PageId(0), true, t); // any page: use the real one below
    let _ = t2;
    // Find the page holding key 7 by writing through the engine-level
    // API but skipping the unlatch: emulate via raw latch + direct write.
    let (_, t3) = db
        .table
        .update_field(&mut db.pool, &mut db.wal, 7, 0, &[0x32; 8], t);
    // The mtr committed (latch cleared) but its redo is NOT durable —
    // PolarRecv must detect the too-new page via the LSN check.
    db.crash();
    let report = recover_polar(&mut db, t3);
    assert!(report.pages_rebuilt >= 1, "too-new page must be rebuilt");
    let (got, _) = db.table.get(&mut db.pool, 7, SimTime::ZERO);
    assert_eq!(
        &got.unwrap()[0..8],
        &[0x31; 8],
        "only durable state survives"
    );
}
