//! Determinism: every harness must reproduce bit-identical results for
//! the same seed, and diverge when the seed changes. Reproducibility is
//! the property that makes a simulation-based reproduction auditable.

use polardb_cxl_repro::prelude::*;
use polardb_cxl_repro::workloads::sharing::point_update_gen;
use simkit::SimTime;

fn pooling(seed: u64) -> (f64, f64, f64) {
    let mut c = PoolingConfig::standard(PoolKind::TieredRdma, SysbenchKind::ReadWrite, 2);
    c.table_size = 6_000;
    c.duration = SimTime::from_millis(40);
    c.seed = seed;
    let r = run_pooling(&c);
    (
        r.metrics.qps,
        r.metrics.avg_latency_us,
        r.metrics.interconnect_gbps,
    )
}

#[test]
fn pooling_is_deterministic() {
    assert_eq!(pooling(1), pooling(1));
}

#[test]
fn pooling_depends_on_seed() {
    assert_ne!(pooling(1), pooling(2));
}

fn sharing(seed: u64) -> (f64, f64) {
    let mut c = SharingConfig::standard(SharingSystem::Cxl, 3);
    c.layout.rows_per_group = 1_000;
    c.duration = SimTime::from_millis(20);
    c.seed = seed;
    let layout = c.layout;
    let r = run_sharing(&c, point_update_gen(layout, 30));
    (r.metrics.qps, r.metrics.avg_latency_us)
}

#[test]
fn sharing_is_deterministic() {
    assert_eq!(sharing(5), sharing(5));
    assert_ne!(sharing(5), sharing(6));
}

// ---- serial vs parallel sweeps -----------------------------------------
//
// The parallel sweep runner fans independent runs across host threads;
// each run constructs its own simulated world (pools, links, caches, RNG
// streams all derive from the run's config), so host-thread scheduling
// can never leak into virtual time. `RunMetrics` derives `PartialEq`
// including the full latency histogram, so equality here is bit-for-bit.

fn sweep_pooling_configs() -> Vec<PoolingConfig> {
    let mut configs = Vec::new();
    for kind in [PoolKind::Dram, PoolKind::TieredRdma, PoolKind::Cxl] {
        for n in [1usize, 2] {
            let mut c = PoolingConfig::standard(kind, SysbenchKind::ReadWrite, n);
            c.table_size = 6_000;
            c.duration = SimTime::from_millis(20);
            configs.push(c);
        }
    }
    configs
}

#[test]
fn pooling_sweep_is_thread_count_invariant() {
    use bench::run_sweep_threads;
    let configs = sweep_pooling_configs();
    let serial = run_sweep_threads(&configs, 1, run_pooling);
    let parallel = run_sweep_threads(&configs, 4, run_pooling);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(s.metrics, p.metrics, "config {i}: metrics diverged");
        assert_eq!(
            s.per_instance_qps, p.per_instance_qps,
            "config {i}: per-instance QPS diverged"
        );
    }
    // And a second parallel pass agrees too (no run-to-run drift).
    let again = run_sweep_threads(&configs, 4, run_pooling);
    assert_eq!(parallel, again);
}

#[test]
fn sharing_sweep_is_thread_count_invariant() {
    use bench::run_sweep_threads;
    let configs: Vec<(SharingSystem, usize, u32)> = vec![
        (SharingSystem::Rdma { lbp_fraction: 0.3 }, 4, 40),
        (SharingSystem::Cxl, 4, 40),
        (SharingSystem::Cxl, 6, 80),
    ];
    let run = |&(system, nodes, pct): &(SharingSystem, usize, u32)| {
        let mut cfg = SharingConfig::standard(system, nodes);
        cfg.layout.rows_per_group = 1_000;
        cfg.duration = SimTime::from_millis(20);
        run_sharing(&cfg, point_update_gen(cfg.layout, pct))
    };
    let serial = run_sweep_threads(&configs, 1, run);
    let parallel = run_sweep_threads(&configs, 4, run);
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(s.metrics, p.metrics, "config {i}: metrics diverged");
    }
}

#[test]
fn recovery_is_deterministic() {
    let run = || {
        let mut c = RecoveryConfig::standard(Scheme::PolarRecv, SysbenchKind::ReadWrite);
        c.table_size = 6_000;
        c.crash_at = SimTime::from_millis(300);
        c.duration = SimTime::from_millis(800);
        let r = run_recovery(&c);
        (
            r.pre_crash_qps,
            r.recovery_secs,
            r.summary.pages_rebuilt,
            r.summary.records_applied,
        )
    };
    assert_eq!(run(), run());
}
