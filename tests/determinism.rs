//! Determinism: every harness must reproduce bit-identical results for
//! the same seed, and diverge when the seed changes. Reproducibility is
//! the property that makes a simulation-based reproduction auditable.

use polardb_cxl_repro::prelude::*;
use polardb_cxl_repro::workloads::sharing::point_update_gen;
use simkit::SimTime;

fn pooling(seed: u64) -> (f64, f64, f64) {
    let mut c = PoolingConfig::standard(PoolKind::TieredRdma, SysbenchKind::ReadWrite, 2);
    c.table_size = 6_000;
    c.duration = SimTime::from_millis(40);
    c.seed = seed;
    let r = run_pooling(&c);
    (
        r.metrics.qps,
        r.metrics.avg_latency_us,
        r.metrics.interconnect_gbps,
    )
}

#[test]
fn pooling_is_deterministic() {
    assert_eq!(pooling(1), pooling(1));
}

#[test]
fn pooling_depends_on_seed() {
    assert_ne!(pooling(1), pooling(2));
}

fn sharing(seed: u64) -> (f64, f64) {
    let mut c = SharingConfig::standard(SharingSystem::Cxl, 3);
    c.layout.rows_per_group = 1_000;
    c.duration = SimTime::from_millis(20);
    c.seed = seed;
    let layout = c.layout;
    let r = run_sharing(&c, point_update_gen(layout, 30));
    (r.metrics.qps, r.metrics.avg_latency_us)
}

#[test]
fn sharing_is_deterministic() {
    assert_eq!(sharing(5), sharing(5));
    assert_ne!(sharing(5), sharing(6));
}

#[test]
fn recovery_is_deterministic() {
    let run = || {
        let mut c = RecoveryConfig::standard(Scheme::PolarRecv, SysbenchKind::ReadWrite);
        c.table_size = 6_000;
        c.crash_at = SimTime::from_millis(300);
        c.duration = SimTime::from_millis(800);
        let r = run_recovery(&c);
        (
            r.pre_crash_qps,
            r.recovery_secs,
            r.summary.pages_rebuilt,
            r.summary.records_applied,
        )
    };
    assert_eq!(run(), run());
}
