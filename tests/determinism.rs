//! Determinism: every harness must reproduce bit-identical results for
//! the same seed, and diverge when the seed changes. Reproducibility is
//! the property that makes a simulation-based reproduction auditable.

use polardb_cxl_repro::prelude::*;
use polardb_cxl_repro::workloads::sharing::point_update_gen;
use simkit::SimTime;

fn pooling(seed: u64) -> (f64, f64, f64) {
    let mut c = PoolingConfig::standard(PoolKind::TieredRdma, SysbenchKind::ReadWrite, 2);
    c.table_size = 6_000;
    c.duration = SimTime::from_millis(40);
    c.seed = seed;
    let r = run_pooling(&c);
    (
        r.metrics.qps,
        r.metrics.avg_latency_us,
        r.metrics.interconnect_gbps,
    )
}

#[test]
fn pooling_is_deterministic() {
    assert_eq!(pooling(1), pooling(1));
}

#[test]
fn pooling_depends_on_seed() {
    assert_ne!(pooling(1), pooling(2));
}

fn sharing(seed: u64) -> (f64, f64) {
    let mut c = SharingConfig::standard(SharingSystem::Cxl, 3);
    c.layout.rows_per_group = 1_000;
    c.duration = SimTime::from_millis(20);
    c.seed = seed;
    let layout = c.layout;
    let r = run_sharing(&c, point_update_gen(layout, 30));
    (r.metrics.qps, r.metrics.avg_latency_us)
}

#[test]
fn sharing_is_deterministic() {
    assert_eq!(sharing(5), sharing(5));
    assert_ne!(sharing(5), sharing(6));
}

// ---- serial vs parallel sweeps -----------------------------------------
//
// The parallel sweep runner fans independent runs across host threads;
// each run constructs its own simulated world (pools, links, caches, RNG
// streams all derive from the run's config), so host-thread scheduling
// can never leak into virtual time. `RunMetrics` derives `PartialEq`
// including the full latency histogram, so equality here is bit-for-bit.

fn sweep_pooling_configs() -> Vec<PoolingConfig> {
    let mut configs = Vec::new();
    for kind in [PoolKind::Dram, PoolKind::TieredRdma, PoolKind::Cxl] {
        for n in [1usize, 2] {
            let mut c = PoolingConfig::standard(kind, SysbenchKind::ReadWrite, n);
            c.table_size = 6_000;
            c.duration = SimTime::from_millis(20);
            configs.push(c);
        }
    }
    configs
}

#[test]
fn pooling_sweep_is_thread_count_invariant() {
    use bench::run_sweep_threads;
    let configs = sweep_pooling_configs();
    let serial = run_sweep_threads(&configs, 1, run_pooling);
    let parallel = run_sweep_threads(&configs, 4, run_pooling);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(s.metrics, p.metrics, "config {i}: metrics diverged");
        assert_eq!(
            s.per_instance_qps, p.per_instance_qps,
            "config {i}: per-instance QPS diverged"
        );
    }
    // And a second parallel pass agrees too (no run-to-run drift).
    let again = run_sweep_threads(&configs, 4, run_pooling);
    assert_eq!(parallel, again);
}

#[test]
fn sharing_sweep_is_thread_count_invariant() {
    use bench::run_sweep_threads;
    let configs: Vec<(SharingSystem, usize, u32)> = vec![
        (SharingSystem::Rdma { lbp_fraction: 0.3 }, 4, 40),
        (SharingSystem::Cxl, 4, 40),
        (SharingSystem::Cxl, 6, 80),
    ];
    let run = |&(system, nodes, pct): &(SharingSystem, usize, u32)| {
        let mut cfg = SharingConfig::standard(system, nodes);
        cfg.layout.rows_per_group = 1_000;
        cfg.duration = SimTime::from_millis(20);
        run_sharing(&cfg, point_update_gen(cfg.layout, pct))
    };
    let serial = run_sweep_threads(&configs, 1, run);
    let parallel = run_sweep_threads(&configs, 4, run);
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(s.metrics, p.metrics, "config {i}: metrics diverged");
    }
}

// ---- fault injection ---------------------------------------------------
//
// The fault engine is part of the simulated world: a `FaultPlan` seed
// fully determines which site hits are hit, torn, poisoned, or crashed,
// so a chaos run (workload + faults + crash + recovery + resume) must be
// bit-identical under the same `(seed, fault_seed)` pair — timeline,
// counters, and registry included.

fn chaos(scheme: Scheme, seed: u64, fault_seed: u64) -> ChaosRunResult {
    let mut c = ChaosConfig::standard(scheme, SysbenchKind::ReadWrite);
    c.table_size = 2_000;
    c.workers = 8;
    c.duration = SimTime::from_millis(120);
    c.fault_events = 12;
    c.horizon_hits = 20_000;
    c.crash_at_hit = Some(5_000);
    c.seed = seed;
    c.fault_seed = fault_seed;
    run_chaos(&c)
}

#[test]
fn chaos_under_faults_is_bit_deterministic() {
    let a = chaos(Scheme::PolarRecv, 11, 0xC4A05);
    let b = chaos(Scheme::PolarRecv, 11, 0xC4A05);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.registry, b.registry);
    // A different fault schedule perturbs the run.
    let c = chaos(Scheme::PolarRecv, 11, 0xBEEF);
    assert_ne!(a.fault_stats, c.fault_stats);
}

#[test]
fn chaos_sweep_is_thread_count_invariant() {
    // The fault engine is thread-local, so concurrent chaos runs on the
    // parallel sweep runner cannot see each other's plans or counters.
    use bench::run_sweep_threads;
    let configs: Vec<ChaosConfig> = [Scheme::Vanilla, Scheme::RdmaBased, Scheme::PolarRecv]
        .into_iter()
        .map(|s| {
            let mut c = ChaosConfig::standard(s, SysbenchKind::ReadWrite);
            c.table_size = 2_000;
            c.workers = 8;
            c.duration = SimTime::from_millis(80);
            c.fault_events = 10;
            c.horizon_hits = 12_000;
            c.crash_at_hit = Some(3_000);
            c
        })
        .collect();
    let serial = run_sweep_threads(&configs, 1, run_chaos);
    let parallel = run_sweep_threads(&configs, 3, run_chaos);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(s.queries, p.queries, "config {i}: queries diverged");
        assert_eq!(
            s.fault_stats, p.fault_stats,
            "config {i}: fault counters diverged"
        );
        assert_eq!(s.registry, p.registry, "config {i}: registry diverged");
        assert_eq!(s.timeline, p.timeline, "config {i}: timeline diverged");
    }
}

#[test]
fn recovery_is_deterministic() {
    let run = || {
        let mut c = RecoveryConfig::standard(Scheme::PolarRecv, SysbenchKind::ReadWrite);
        c.table_size = 6_000;
        c.crash_at = SimTime::from_millis(300);
        c.duration = SimTime::from_millis(800);
        let r = run_recovery(&c);
        (
            r.pre_crash_qps,
            r.recovery_secs,
            r.summary.pages_rebuilt,
            r.summary.records_applied,
        )
    };
    assert_eq!(run(), run());
}

// ---- failover ----------------------------------------------------------
//
// The failover harness folds the fault engine, the fencing protocol and
// the standby takeover into one run; `(seed, fault_seed)` must pin the
// whole thing — crash instant, per-node timelines, takeover cost,
// counters and registry alike.

fn failover(seed: u64, fault_seed: u64) -> FailoverResult {
    let mut c = FailoverConfig::smoke(3);
    c.seed = seed;
    c.fault_seed = fault_seed;
    run_failover(&c)
}

#[test]
fn failover_timeline_is_bit_deterministic() {
    let a = failover(11, 7);
    let b = failover(11, 7);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.queries_per_node, b.queries_per_node);
    assert_eq!(a.per_node_timeline, b.per_node_timeline);
    assert_eq!(a.takeover, b.takeover);
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.fusion, b.fusion);
    assert_eq!(a.max_survivor_gap_ns, b.max_survivor_gap_ns);
    assert_eq!(a.registry, b.registry);
    assert_eq!(a.telemetry, b.telemetry);
    // A different fault schedule moves the crash instant and with it
    // the whole takeover timeline.
    let c = failover(11, 0xBEEF);
    assert_ne!(a.takeover, c.takeover);
}

#[test]
fn failover_sweep_is_thread_count_invariant() {
    use bench::run_sweep_threads;
    let configs: Vec<FailoverConfig> = [(11u64, 7u64), (11, 21), (23, 7)]
        .into_iter()
        .map(|(seed, fault_seed)| {
            let mut c = FailoverConfig::smoke(3);
            c.seed = seed;
            c.fault_seed = fault_seed;
            c
        })
        .collect();
    let serial = run_sweep_threads(&configs, 1, run_failover);
    let parallel = run_sweep_threads(&configs, 3, run_failover);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(s.queries, p.queries, "config {i}: queries diverged");
        assert_eq!(
            s.per_node_timeline, p.per_node_timeline,
            "config {i}: timelines diverged"
        );
        assert_eq!(s.takeover, p.takeover, "config {i}: takeover diverged");
        assert_eq!(s.registry, p.registry, "config {i}: registry diverged");
    }
}

// ---- intra-config parallel stepping ------------------------------------
//
// The sweeps above parallelise across independent runs. The phased
// engines also parallelise *within* one run: nodes step concurrently
// between virtual-time barriers, and cross-node effects commit at each
// barrier in fixed node order. The host worker count must never reach
// simulated state — 1, 2 and 4 workers have to agree bit-for-bit,
// traces and fault schedules included.

fn sharing_with_workers(system: SharingSystem, threads: usize) -> SharingResult {
    let mut c = SharingConfig::standard(system, 4);
    c.layout.rows_per_group = 1_000;
    c.duration = SimTime::from_millis(20);
    c.host_threads = threads;
    let layout = c.layout;
    run_sharing(&c, point_update_gen(layout, 40))
}

#[test]
fn sharing_intra_config_is_worker_count_invariant() {
    for system in [
        SharingSystem::Cxl,
        SharingSystem::Cxl3Hw,
        SharingSystem::Rdma { lbp_fraction: 0.3 },
    ] {
        let one = sharing_with_workers(system, 1);
        for workers in [2usize, 4] {
            assert_eq!(
                one,
                sharing_with_workers(system, workers),
                "{system:?}: {workers} workers diverged from serial"
            );
        }
    }
}

#[test]
fn eviction_policies_are_worker_count_invariant() {
    // The pluggable eviction policies (LRU / CLOCK / 2Q) live inside
    // each node's local pool, which steps on whichever host worker
    // drives the node — so a policy with any host-order dependence
    // (iteration over a hash map, a tiebreak on wall time) would
    // diverge here. Every policy must be worker-count invariant.
    let run = |policy: PolicyKind, threads: usize| {
        let mut c = SharingConfig::standard(SharingSystem::Rdma { lbp_fraction: 0.3 }, 4);
        c.layout.rows_per_group = 1_000;
        c.duration = SimTime::from_millis(20);
        c.host_threads = threads;
        c.policy = policy;
        let layout = c.layout;
        run_sharing(&c, point_update_gen(layout, 40))
    };
    let mut baselines = Vec::new();
    for policy in PolicyKind::ALL {
        let one = run(policy, 1);
        for workers in [2usize, 4] {
            assert_eq!(
                one,
                run(policy, workers),
                "{policy:?}: {workers} workers diverged from serial"
            );
        }
        baselines.push(one);
    }
    // And the knob is alive: the three policies are different algorithms
    // and must not all produce identical runs on an eviction-heavy pool.
    assert!(
        baselines.windows(2).any(|w| w[0] != w[1]),
        "all eviction policies produced identical runs — policy knob is dead"
    );
}

#[test]
fn sharing_traces_are_worker_count_invariant() {
    // Spans recorded on worker threads re-land on the driver in node
    // order at the merge, so the trace stream (and the attribution it
    // sums to) is itself part of the determinism contract.
    use polardb_cxl_repro::simkit::trace;
    let capture = |threads: usize| {
        trace::reset();
        trace::enable_spans(true);
        trace::enable_attribution(true);
        let r = sharing_with_workers(SharingSystem::Cxl, threads);
        trace::enable_spans(false);
        trace::enable_attribution(false);
        let attr = trace::attr_snapshot();
        let events = trace::take_events();
        trace::reset();
        (r, attr, events)
    };
    let (r1, a1, e1) = capture(1);
    let (r4, a4, e4) = capture(4);
    assert_eq!(r1, r4, "tracing + parallel stepping changed results");
    assert_eq!(a1, a4, "attribution diverged across worker counts");
    // Without the `trace` feature the hooks compile to nothing and both
    // streams are (identically) empty — the equality checks still bind.
    if cfg!(feature = "trace") {
        assert!(!e1.is_empty(), "traced run recorded no spans");
    }
    assert_eq!(e1, e4, "span streams diverged across worker counts");
}

#[test]
fn overload_intra_config_is_worker_count_invariant() {
    // The overload harness adds three host-side actors that could each
    // leak host order into simulated state: per-lane admission buckets,
    // per-lane circuit breakers, and the serial brownout controller at
    // quantum barriers. Every QoS decision must be a function of virtual
    // time and per-node state only — with QoS on, with it off, and with
    // a link flap driving the breaker through trip/half-open/close.
    let run = |qos: bool, flap: bool, threads: usize| {
        let mut c = OverloadConfig::smoke(3);
        c.qos = qos;
        if flap {
            c.link_flap = Some(FlapSpec {
                host: 1,
                at: SimTime::from_millis(6),
                down_ns: 4_000_000,
                retry_ns: 100_000,
            });
        }
        c.host_threads = threads;
        run_overload(&c)
    };
    for (qos, flap) in [(true, false), (false, false), (true, true)] {
        let one = run(qos, flap, 1);
        for workers in [2usize, 4] {
            let p = run(qos, flap, workers);
            assert_eq!(
                one.per_tenant, p.per_tenant,
                "qos={qos} flap={flap} {workers} workers: per-tenant outcomes"
            );
            assert_eq!(
                one.registry, p.registry,
                "qos={qos} flap={flap} {workers} workers: registry"
            );
            assert_eq!(
                one, p,
                "qos={qos} flap={flap} {workers} workers diverged from serial"
            );
        }
    }
}

#[test]
fn elasticity_intra_config_is_worker_count_invariant() {
    // Live migration adds the sharpest host-order hazards yet: the
    // controller's pressure streaks are folded from per-lane counters at
    // barriers, the coordinator's PREPARE/COMMIT mutate the shared
    // directory between quanta, and the write-protected window gates
    // per-lane statements. Every one of those must be a function of
    // virtual time and node state only — adaptive and static, and with
    // the protected window under a heavy write mix.
    let run = |adaptive: bool, write_pct: u32, threads: usize| {
        let mut c = ElasticityConfig::smoke();
        c.adaptive = adaptive;
        c.write_pct = write_pct;
        c.host_threads = threads;
        run_elasticity(&c)
    };
    for (adaptive, write_pct) in [(true, 20), (false, 20), (true, 50)] {
        let one = run(adaptive, write_pct, 1);
        for workers in [2usize, 4] {
            let p = run(adaptive, write_pct, workers);
            assert_eq!(
                one.per_tenant, p.per_tenant,
                "adaptive={adaptive} wr={write_pct} {workers} workers: per-tenant outcomes"
            );
            assert_eq!(
                one.final_owners, p.final_owners,
                "adaptive={adaptive} wr={write_pct} {workers} workers: extent owners"
            );
            assert_eq!(
                one.registry, p.registry,
                "adaptive={adaptive} wr={write_pct} {workers} workers: registry"
            );
            assert_eq!(
                one, p,
                "adaptive={adaptive} wr={write_pct} {workers} workers diverged from serial"
            );
        }
    }
}

#[test]
fn failover_intra_config_is_worker_count_invariant() {
    // Failover folds the fault engine into the phased run: each node's
    // fault state steps on whichever worker drives the node, so the
    // fault schedule is the sharpest place for a worker-count leak to
    // show up. It must not.
    let run = |threads: usize| {
        let mut c = FailoverConfig::smoke(3);
        c.seed = 11;
        c.fault_seed = 7;
        c.host_threads = threads;
        run_failover(&c)
    };
    let one = run(1);
    for workers in [2usize, 4] {
        let p = run(workers);
        assert_eq!(one.queries, p.queries, "{workers} workers: queries");
        assert_eq!(
            one.queries_per_node, p.queries_per_node,
            "{workers} workers: per-node queries"
        );
        assert_eq!(
            one.per_node_timeline, p.per_node_timeline,
            "{workers} workers: timelines"
        );
        assert_eq!(one.takeover, p.takeover, "{workers} workers: takeover");
        assert_eq!(
            one.fault_stats, p.fault_stats,
            "{workers} workers: fault schedule"
        );
        assert_eq!(one.fusion, p.fusion, "{workers} workers: fusion stats");
        assert_eq!(
            one.max_survivor_gap_ns, p.max_survivor_gap_ns,
            "{workers} workers: survivor gap"
        );
        assert_eq!(one.registry, p.registry, "{workers} workers: registry");
        // The telemetry report — every window row, health glyph and
        // alert timestamp — is part of the bit-identical contract:
        // windows close at virtual-time barriers, not host-thread
        // boundaries.
        assert_eq!(one.telemetry, p.telemetry, "{workers} workers: telemetry");
    }
}
