//! Exhaustive crash-point sweep (ALICE-style): run a scripted, seeded
//! workload against every pool design, crash the host at each selected
//! injection-site hit — plain crashes, torn WAL flushes, partial
//! `clflush`es — recover with the design's scheme, and verify the
//! database against a model that tracks exactly what was committed.
//!
//! A recovered database must match the committed model, with the single
//! in-flight operation allowed to be either fully present or fully
//! absent (commit durability is decided by the WAL tail). Anything else
//! — a torn record, a half-applied page, a wrong row count — fails the
//! sweep.
//!
//! The deliberately broken [`TrustPolicy::TrustLatched`] recovery must
//! FAIL this sweep (see `broken_trust_policy_fails_the_sweep`): it
//! trusts write-latched CXL pages, so a partial clflush leaves torn
//! bytes that Durable would have rebuilt.
//!
//! Knobs: `FAULT_SWEEP_SMOKE=1` (CI; few points), `FAULT_SWEEP_FULL=1`
//! (dense), `FAULT_SWEEP_POINTS=n` (explicit global point count).

use polardb_cxl_repro::prelude::*;
use polardb_cxl_repro::simkit::faults::FaultStats;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

const REC: u16 = 120;
const KEYS: u64 = 140;
const OPS: usize = 120;
const MAX_KEY: u64 = KEYS + OPS as u64;
const OPS_SEED: u64 = 0xFA01;

// ---------------------------------------------------------------------------
// The scripted workload and its model.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Update(u64, [u8; 72]),
    Insert(u64, Vec<u8>),
    Delete(u64),
    Select(u64),
    Checkpoint,
}

/// One deterministic op script shared by every design and every sweep
/// point (the checkpoint mid-run varies the replay floor).
fn gen_ops() -> Vec<Op> {
    let mut rng = SimRng::seed_from_u64(OPS_SEED);
    let mut next_key = KEYS + 1;
    let mut ops = Vec::with_capacity(OPS + 1);
    for i in 0..OPS {
        if i == OPS / 2 {
            ops.push(Op::Checkpoint);
        }
        ops.push(match rng.gen_range(0..10u32) {
            0..=3 => Op::Update(rng.gen_range(1..next_key), [rng.gen::<u8>(); 72]),
            4..=5 => {
                let rec = vec![rng.gen::<u8>(); REC as usize];
                next_key += 1;
                Op::Insert(next_key - 1, rec)
            }
            6 => Op::Delete(rng.gen_range(1..next_key)),
            _ => Op::Select(rng.gen_range(1..next_key)),
        });
    }
    ops
}

fn initial_model() -> BTreeMap<u64, Vec<u8>> {
    (1..=KEYS)
        .map(|k| (k, vec![(k % 250) as u8; REC as usize]))
        .collect()
}

fn apply_db<P: BufferPool>(db: &mut Db<P>, op: &Op, now: SimTime) -> SimTime {
    match op {
        Op::Update(k, v) => db.update(*k, 16, v, now).1,
        Op::Insert(k, rec) => db.insert(*k, rec, now).1,
        Op::Delete(k) => db.delete(*k, now).1,
        Op::Select(k) => db.point_select(*k, now).1,
        Op::Checkpoint => db.checkpoint(now),
    }
}

fn apply_model(model: &mut BTreeMap<u64, Vec<u8>>, op: &Op) {
    match op {
        Op::Update(k, v) => {
            if let Some(rec) = model.get_mut(k) {
                rec[16..16 + 72].copy_from_slice(v);
            }
        }
        Op::Insert(k, rec) => {
            model.insert(*k, rec.clone());
        }
        Op::Delete(k) => {
            model.remove(k);
        }
        Op::Select(_) | Op::Checkpoint => {}
    }
}

/// Run the script until it finishes or the installed plan kills the
/// host. The model tracks completed ops only; the index of the op that
/// was in flight at the crash (if any) is returned.
fn run_ops<P: BufferPool>(
    db: &mut Db<P>,
    ops: &[Op],
    model: &mut BTreeMap<u64, Vec<u8>>,
) -> (SimTime, Option<usize>) {
    let mut now = SimTime::ZERO;
    for (i, op) in ops.iter().enumerate() {
        now = apply_db(db, op, now);
        if faults::crashed() {
            return (now, Some(i));
        }
        apply_model(model, op);
    }
    (now, None)
}

// ---------------------------------------------------------------------------
// Verification: recovered state must be the model, modulo the in-flight op.
// ---------------------------------------------------------------------------

fn matches_model<P: BufferPool>(
    db: &mut Db<P>,
    model: &BTreeMap<u64, Vec<u8>>,
) -> Result<(), String> {
    for k in 1..=MAX_KEY {
        let (got, _) = db.table.get(&mut db.pool, k, SimTime::ZERO);
        if got.as_deref() != model.get(&k).map(|v| v.as_slice()) {
            return Err(format!(
                "key {k}: got {:?}…, want {:?}…",
                got.as_deref().map(|v| &v[..8.min(v.len())]),
                model.get(&k).map(|v| &v[..8])
            ));
        }
    }
    let rows = db.table.check_invariants(&mut db.pool);
    if rows != model.len() as u64 {
        return Err(format!("row count {rows}, want {}", model.len()));
    }
    Ok(())
}

/// The recovered database must equal the committed model with the
/// in-flight op either fully absent or fully applied. Panics inside the
/// tree (torn pages) count as failures, not aborts.
fn verify<P: BufferPool>(
    db: &mut Db<P>,
    model: &BTreeMap<u64, Vec<u8>>,
    in_flight: Option<&Op>,
) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| {
        let old = matches_model(db, model);
        if old.is_ok() {
            return Ok(());
        }
        if let Some(op) = in_flight {
            let mut after = model.clone();
            apply_model(&mut after, op);
            return matches_model(db, &after)
                .map_err(|e| format!("neither old ({}) nor new ({e}) state", old.unwrap_err()));
        }
        old
    }))
    .unwrap_or_else(|_| Err("verification panicked (corrupt tree)".into()))
}

// ---------------------------------------------------------------------------
// World builders, one per pool design.
// ---------------------------------------------------------------------------

fn load<P: BufferPool>(mut db: Db<P>) -> Db<P> {
    db.load((1..=KEYS).map(|k| (k, vec![(k % 250) as u8; REC as usize])));
    db
}

fn build_vanilla() -> Db<DramBp> {
    let store = PageStore::with_page_size(512, 2048);
    // 16 frames force dirty evictions, so StorageWrite sites fire mid-run.
    load(Db::create(DramBp::new(16, 1 << 20, store), REC))
}

fn build_rdma() -> Db<TieredRdmaBp> {
    let store = PageStore::with_page_size(512, 2048);
    let rdma = Rc::new(RefCell::new(RdmaPool::new(512 * 2048, 1)));
    load(Db::create(
        TieredRdmaBp::new(rdma, 0, 0, 8, 1 << 20, store),
        REC,
    ))
}

fn build_cxl() -> Db<CxlBp> {
    let store = PageStore::with_page_size(512, 2048);
    // capture=true: stores sit in the CPU cache until clflush, so
    // partial-clflush points genuinely tear pages.
    let cxl = Rc::new(RefCell::new(CxlPool::single_host(
        4 << 20,
        1,
        1 << 20,
        true,
    )));
    load(Db::create(
        CxlBp::format(cxl, NodeId(0), 0, 512, store),
        REC,
    ))
}

// ---------------------------------------------------------------------------
// The sweep driver.
// ---------------------------------------------------------------------------

struct SweepBudget {
    /// Crash points strided over the global hit index.
    global: usize,
    /// Crash points strided per reachable site (coverage guarantee).
    per_site: usize,
    /// Torn-WAL-flush points (WalFlush hits).
    torn: usize,
    /// Partial-clflush points (Clflush hits).
    partial: usize,
    /// Enforce the ≥40-distinct-crash-points floor.
    strict: bool,
}

fn budget() -> SweepBudget {
    let smoke = std::env::var_os("FAULT_SWEEP_SMOKE").is_some();
    let full = std::env::var_os("FAULT_SWEEP_FULL").is_some();
    let global = std::env::var("FAULT_SWEEP_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke {
            10
        } else if full {
            400
        } else {
            48
        });
    SweepBudget {
        global,
        per_site: if smoke { 2 } else { 4 },
        torn: if smoke { 3 } else { 8 },
        partial: if smoke { 3 } else { 8 },
        strict: !smoke && global >= 40,
    }
}

struct SweepOutcome {
    crash_hits: BTreeSet<u64>,
    crash_sites: BTreeSet<&'static str>,
    failures: Vec<String>,
    points_run: usize,
}

fn dry_run<P: BufferPool, B: Fn() -> Db<P>>(build: &B, ops: &[Op]) -> FaultStats {
    let mut db = build();
    let mut model = initial_model();
    faults::install(FaultPlan::count_only());
    let (_, crashed) = run_ops(&mut db, ops, &mut model);
    let dry = faults::stats();
    faults::clear();
    assert!(crashed.is_none(), "count-only plan must not crash");
    assert!(dry.total_hits() > 0, "workload must reach injection sites");
    dry
}

fn sweep_plans(dry: &FaultStats, b: &SweepBudget) -> Vec<FaultPlan> {
    let n = dry.total_hits();
    let mut plans = Vec::new();
    let global = (b.global as u64).min(n);
    for i in 0..global {
        plans.push(FaultPlan::crash_at_hit(i * n / global));
    }
    for site in FaultSite::ALL {
        let h = dry.hits[site as usize];
        let p = (b.per_site as u64).min(h);
        for j in 0..p {
            plans.push(
                FaultPlan::count_only().with(Trigger::SiteHit(site, j * h / p), Action::Crash),
            );
        }
    }
    let hw = dry.hits[FaultSite::WalFlush as usize];
    for j in 0..(b.torn as u64).min(hw) {
        plans.push(FaultPlan::count_only().with(
            Trigger::SiteHit(FaultSite::WalFlush, j * hw / (b.torn as u64).min(hw)),
            // Vary the tear byte-depth so both "nothing fit" and "some
            // whole groups fit" shapes occur.
            Action::TornWalFlush {
                keep_bytes: 24 + 61 * j,
            },
        ));
    }
    let hc = dry.hits[FaultSite::Clflush as usize];
    for j in 0..(b.partial as u64).min(hc) {
        plans.push(FaultPlan::count_only().with(
            Trigger::SiteHit(FaultSite::Clflush, j * hc / (b.partial as u64).min(hc)),
            Action::PartialClflush {
                keep_lines: 1 + (j % 2),
            },
        ));
    }
    plans
}

fn sweep_design<P, B, R>(build: B, recover: R) -> SweepOutcome
where
    P: BufferPool + Crashable,
    B: Fn() -> Db<P>,
    R: Fn(&mut Db<P>, SimTime),
{
    let ops = gen_ops();
    let dry = dry_run(&build, &ops);
    let b = budget();
    let mut out = SweepOutcome {
        crash_hits: BTreeSet::new(),
        crash_sites: BTreeSet::new(),
        failures: Vec::new(),
        points_run: 0,
    };
    for plan in sweep_plans(&dry, &b) {
        let mut db = build();
        let mut model = initial_model();
        faults::install(plan);
        let (now, in_flight) = run_ops(&mut db, &ops, &mut model);
        let st = faults::stats();
        faults::clear();
        let Some(hit) = st.crash_hit else {
            continue; // the trigger landed past the workload's horizon
        };
        let site = st.crash_site.expect("crash has a site").name();
        out.points_run += 1;
        out.crash_hits.insert(hit);
        out.crash_sites.insert(site);
        db.crash();
        recover(&mut db, now);
        if let Err(e) = verify(&mut db, &model, in_flight.map(|i| &ops[i])) {
            out.failures
                .push(format!("crash at hit {hit} ({site}): {e}"));
        }
    }
    if b.strict {
        assert!(
            out.crash_hits.len() >= 40,
            "sweep must cover >=40 distinct crash points, got {}",
            out.crash_hits.len()
        );
    }
    out
}

fn assert_clean(out: &SweepOutcome, design: &str, expect_sites: &[&str]) {
    assert!(
        out.failures.is_empty(),
        "{design}: {} of {} crash points failed recovery:\n{}",
        out.failures.len(),
        out.points_run,
        out.failures.join("\n")
    );
    for s in expect_sites {
        assert!(
            out.crash_sites.contains(s),
            "{design}: sweep never crashed at {s} (covered: {:?})",
            out.crash_sites
        );
    }
}

// ---------------------------------------------------------------------------
// The sweeps, one per design.
// ---------------------------------------------------------------------------

#[test]
fn sweep_vanilla_dram_replay() {
    let out = sweep_design(build_vanilla, |db, t| {
        recover_replay(db, "vanilla", t);
    });
    assert_clean(&out, "vanilla", &["wal_flush", "storage_write"]);
}

#[test]
fn sweep_rdma_based_replay() {
    let out = sweep_design(build_rdma, |db, t| {
        recover_replay(db, "rdma-based", t);
    });
    assert_clean(
        &out,
        "rdma-based",
        &["wal_flush", "rdma_read", "rdma_write"],
    );
}

#[test]
fn sweep_polarrecv() {
    let out = sweep_design(build_cxl, |db, t| {
        recover_polar(db, t);
    });
    assert_clean(
        &out,
        "polarrecv",
        &[
            "wal_flush",
            "clflush",
            "cxl_read",
            "cxl_nt_store",
            "storage_write",
        ],
    );
}

#[test]
fn sweep_polarrecv_nometa() {
    let out = sweep_design(build_cxl, |db, t| {
        let report = polardb_cxl_repro::polarcxlmem::recovery::polar_recv_with(
            &mut db.pool,
            &mut db.wal,
            t,
            false,
        );
        let (table, _) = BTree::open(&mut db.pool, db.table.meta_page, report.done);
        db.table = table;
    });
    assert_clean(
        &out,
        "polarrecv-nometa",
        &["wal_flush", "clflush", "cxl_read", "cxl_nt_store"],
    );
}

/// Teeth: the deliberately broken trust policy must corrupt at least
/// one partial-clflush point. This proves the sweep can actually catch
/// a recovery bug — a sweep that passes everything proves nothing.
#[test]
fn broken_trust_policy_fails_the_sweep() {
    let ops = gen_ops();
    let dry = dry_run(&build_cxl, &ops);
    let hc = dry.hits[FaultSite::Clflush as usize];
    assert!(hc > 0, "the CXL design must reach clflush sites");
    let points = (if std::env::var_os("FAULT_SWEEP_SMOKE").is_some() {
        8u64
    } else {
        24
    })
    .min(hc);
    // Expected-failure points panic inside the torn tree; keep the test
    // log quiet while probing them.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut broken = 0usize;
    let mut run = 0usize;
    for j in 0..points {
        let plan = FaultPlan::count_only().with(
            Trigger::SiteHit(FaultSite::Clflush, j * hc / points),
            Action::PartialClflush {
                keep_lines: 1 + (j % 2),
            },
        );
        let mut db = build_cxl();
        let mut model = initial_model();
        faults::install(plan);
        let (now, in_flight) = run_ops(&mut db, &ops, &mut model);
        let st = faults::stats();
        faults::clear();
        if st.crash_hit.is_none() {
            continue;
        }
        run += 1;
        db.crash();
        let bad = catch_unwind(AssertUnwindSafe(|| {
            recover_polar_policy(&mut db, TrustPolicy::TrustLatched, now);
            verify(&mut db, &model, in_flight.map(|i| &ops[i])).is_err()
        }))
        .unwrap_or(true);
        if bad {
            broken += 1;
        }
    }
    std::panic::set_hook(hook);
    assert!(run > 0, "no partial-clflush point fired");
    assert!(
        broken > 0,
        "TrustLatched recovered all {run} partial-clflush points consistently — \
         the sweep has no teeth"
    );
}
