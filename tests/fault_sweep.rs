//! Exhaustive crash-point sweep (ALICE-style): run a scripted, seeded
//! workload against every pool design, crash the host at each selected
//! injection-site hit — plain crashes, torn WAL flushes, partial
//! `clflush`es — recover with the design's scheme, and verify the
//! database against a model that tracks exactly what was committed.
//!
//! A recovered database must match the committed model, with the single
//! in-flight operation allowed to be either fully present or fully
//! absent (commit durability is decided by the WAL tail). Anything else
//! — a torn record, a half-applied page, a wrong row count — fails the
//! sweep.
//!
//! The deliberately broken [`TrustPolicy::TrustLatched`] recovery must
//! FAIL this sweep (see `broken_trust_policy_fails_the_sweep`): it
//! trusts write-latched CXL pages, so a partial clflush leaves torn
//! bytes that Durable would have rebuilt.
//!
//! Knobs: `FAULT_SWEEP_SMOKE=1` (CI; few points), `FAULT_SWEEP_FULL=1`
//! (dense), `FAULT_SWEEP_POINTS=n` (explicit global point count).

use polardb_cxl_repro::prelude::*;
use polardb_cxl_repro::simkit::faults::FaultStats;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

const REC: u16 = 120;
const KEYS: u64 = 140;
const OPS: usize = 120;
const MAX_KEY: u64 = KEYS + OPS as u64;
const OPS_SEED: u64 = 0xFA01;

// ---------------------------------------------------------------------------
// The scripted workload and its model.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Update(u64, [u8; 72]),
    Insert(u64, Vec<u8>),
    Delete(u64),
    Select(u64),
    Checkpoint,
}

/// One deterministic op script shared by every design and every sweep
/// point (the checkpoint mid-run varies the replay floor).
fn gen_ops() -> Vec<Op> {
    let mut rng = SimRng::seed_from_u64(OPS_SEED);
    let mut next_key = KEYS + 1;
    let mut ops = Vec::with_capacity(OPS + 1);
    for i in 0..OPS {
        if i == OPS / 2 {
            ops.push(Op::Checkpoint);
        }
        ops.push(match rng.gen_range(0..10u32) {
            0..=3 => Op::Update(rng.gen_range(1..next_key), [rng.gen::<u8>(); 72]),
            4..=5 => {
                let rec = vec![rng.gen::<u8>(); REC as usize];
                next_key += 1;
                Op::Insert(next_key - 1, rec)
            }
            6 => Op::Delete(rng.gen_range(1..next_key)),
            _ => Op::Select(rng.gen_range(1..next_key)),
        });
    }
    ops
}

fn initial_model() -> BTreeMap<u64, Vec<u8>> {
    (1..=KEYS)
        .map(|k| (k, vec![(k % 250) as u8; REC as usize]))
        .collect()
}

fn apply_db<P: BufferPool>(db: &mut Db<P>, op: &Op, now: SimTime) -> SimTime {
    match op {
        Op::Update(k, v) => db.update(*k, 16, v, now).1,
        Op::Insert(k, rec) => db.insert(*k, rec, now).1,
        Op::Delete(k) => db.delete(*k, now).1,
        Op::Select(k) => db.point_select(*k, now).1,
        Op::Checkpoint => db.checkpoint(now),
    }
}

fn apply_model(model: &mut BTreeMap<u64, Vec<u8>>, op: &Op) {
    match op {
        Op::Update(k, v) => {
            if let Some(rec) = model.get_mut(k) {
                rec[16..16 + 72].copy_from_slice(v);
            }
        }
        Op::Insert(k, rec) => {
            model.insert(*k, rec.clone());
        }
        Op::Delete(k) => {
            model.remove(k);
        }
        Op::Select(_) | Op::Checkpoint => {}
    }
}

/// Run the script until it finishes or the installed plan kills the
/// host. The model tracks completed ops only; the index of the op that
/// was in flight at the crash (if any) is returned.
fn run_ops<P: BufferPool>(
    db: &mut Db<P>,
    ops: &[Op],
    model: &mut BTreeMap<u64, Vec<u8>>,
) -> (SimTime, Option<usize>) {
    let mut now = SimTime::ZERO;
    for (i, op) in ops.iter().enumerate() {
        now = apply_db(db, op, now);
        if faults::crashed() {
            return (now, Some(i));
        }
        apply_model(model, op);
    }
    (now, None)
}

// ---------------------------------------------------------------------------
// Verification: recovered state must be the model, modulo the in-flight op.
// ---------------------------------------------------------------------------

fn matches_model<P: BufferPool>(
    db: &mut Db<P>,
    model: &BTreeMap<u64, Vec<u8>>,
) -> Result<(), String> {
    for k in 1..=MAX_KEY {
        let (got, _) = db.table.get(&mut db.pool, k, SimTime::ZERO);
        if got.as_deref() != model.get(&k).map(|v| v.as_slice()) {
            return Err(format!(
                "key {k}: got {:?}…, want {:?}…",
                got.as_deref().map(|v| &v[..8.min(v.len())]),
                model.get(&k).map(|v| &v[..8])
            ));
        }
    }
    let rows = db.table.check_invariants(&mut db.pool);
    if rows != model.len() as u64 {
        return Err(format!("row count {rows}, want {}", model.len()));
    }
    Ok(())
}

/// The recovered database must equal the committed model with the
/// in-flight op either fully absent or fully applied. Panics inside the
/// tree (torn pages) count as failures, not aborts.
fn verify<P: BufferPool>(
    db: &mut Db<P>,
    model: &BTreeMap<u64, Vec<u8>>,
    in_flight: Option<&Op>,
) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| {
        let old = matches_model(db, model);
        if old.is_ok() {
            return Ok(());
        }
        if let Some(op) = in_flight {
            let mut after = model.clone();
            apply_model(&mut after, op);
            return matches_model(db, &after)
                .map_err(|e| format!("neither old ({}) nor new ({e}) state", old.unwrap_err()));
        }
        old
    }))
    .unwrap_or_else(|_| Err("verification panicked (corrupt tree)".into()))
}

// ---------------------------------------------------------------------------
// World builders, one per pool design.
// ---------------------------------------------------------------------------

fn load<P: BufferPool>(mut db: Db<P>) -> Db<P> {
    db.load((1..=KEYS).map(|k| (k, vec![(k % 250) as u8; REC as usize])));
    db
}

fn build_vanilla() -> Db<DramBp> {
    let store = PageStore::with_page_size(512, 2048);
    // 16 frames force dirty evictions, so StorageWrite sites fire mid-run.
    load(Db::create(DramBp::new(16, 1 << 20, store), REC))
}

fn build_rdma() -> Db<TieredRdmaBp> {
    let store = PageStore::with_page_size(512, 2048);
    let rdma = Rc::new(RefCell::new(RdmaPool::new(512 * 2048, 1)));
    load(Db::create(
        TieredRdmaBp::new(rdma, 0, 0, 8, 1 << 20, store),
        REC,
    ))
}

fn build_cxl() -> Db<CxlBp> {
    build_cxl_policy(PolicyKind::Lru)
}

fn build_cxl_policy(policy: PolicyKind) -> Db<CxlBp> {
    let store = PageStore::with_page_size(512, 2048);
    // capture=true: stores sit in the CPU cache until clflush, so
    // partial-clflush points genuinely tear pages.
    let cxl = Rc::new(RefCell::new(CxlPool::single_host(
        4 << 20,
        1,
        1 << 20,
        true,
    )));
    load(Db::create(
        CxlBp::format_with_policy(cxl, NodeId(0), 0, 512, store, policy),
        REC,
    ))
}

// ---------------------------------------------------------------------------
// The sweep driver.
// ---------------------------------------------------------------------------

struct SweepBudget {
    /// Crash points strided over the global hit index.
    global: usize,
    /// Crash points strided per reachable site (coverage guarantee).
    per_site: usize,
    /// Torn-WAL-flush points (WalFlush hits).
    torn: usize,
    /// Partial-clflush points (Clflush hits).
    partial: usize,
    /// Enforce the ≥40-distinct-crash-points floor.
    strict: bool,
}

fn budget() -> SweepBudget {
    let smoke = std::env::var_os("FAULT_SWEEP_SMOKE").is_some();
    let full = std::env::var_os("FAULT_SWEEP_FULL").is_some();
    let global = std::env::var("FAULT_SWEEP_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke {
            10
        } else if full {
            400
        } else {
            48
        });
    SweepBudget {
        global,
        per_site: if smoke { 2 } else { 4 },
        torn: if smoke { 3 } else { 8 },
        partial: if smoke { 3 } else { 8 },
        strict: !smoke && global >= 40,
    }
}

struct SweepOutcome {
    crash_hits: BTreeSet<u64>,
    crash_sites: BTreeSet<&'static str>,
    failures: Vec<String>,
    points_run: usize,
}

fn dry_run<P: BufferPool, B: Fn() -> Db<P>>(build: &B, ops: &[Op]) -> FaultStats {
    let mut db = build();
    let mut model = initial_model();
    faults::install(FaultPlan::count_only());
    let (_, crashed) = run_ops(&mut db, ops, &mut model);
    let dry = faults::stats();
    faults::clear();
    assert!(crashed.is_none(), "count-only plan must not crash");
    assert!(dry.total_hits() > 0, "workload must reach injection sites");
    dry
}

fn sweep_plans(dry: &FaultStats, b: &SweepBudget) -> Vec<FaultPlan> {
    let n = dry.total_hits();
    let mut plans = Vec::new();
    let global = (b.global as u64).min(n);
    for i in 0..global {
        plans.push(FaultPlan::crash_at_hit(i * n / global));
    }
    for site in FaultSite::ALL {
        let h = dry.hits[site as usize];
        let p = (b.per_site as u64).min(h);
        for j in 0..p {
            plans.push(
                FaultPlan::count_only().with(Trigger::SiteHit(site, j * h / p), Action::Crash),
            );
        }
    }
    let hw = dry.hits[FaultSite::WalFlush as usize];
    for j in 0..(b.torn as u64).min(hw) {
        plans.push(FaultPlan::count_only().with(
            Trigger::SiteHit(FaultSite::WalFlush, j * hw / (b.torn as u64).min(hw)),
            // Vary the tear byte-depth so both "nothing fit" and "some
            // whole groups fit" shapes occur.
            Action::TornWalFlush {
                keep_bytes: 24 + 61 * j,
            },
        ));
    }
    let hc = dry.hits[FaultSite::Clflush as usize];
    for j in 0..(b.partial as u64).min(hc) {
        plans.push(FaultPlan::count_only().with(
            Trigger::SiteHit(FaultSite::Clflush, j * hc / (b.partial as u64).min(hc)),
            Action::PartialClflush {
                keep_lines: 1 + (j % 2),
            },
        ));
    }
    plans
}

fn sweep_design<P, B, R>(build: B, recover: R) -> SweepOutcome
where
    P: BufferPool + Crashable,
    B: Fn() -> Db<P>,
    R: Fn(&mut Db<P>, SimTime),
{
    let ops = gen_ops();
    let dry = dry_run(&build, &ops);
    let b = budget();
    let mut out = SweepOutcome {
        crash_hits: BTreeSet::new(),
        crash_sites: BTreeSet::new(),
        failures: Vec::new(),
        points_run: 0,
    };
    for plan in sweep_plans(&dry, &b) {
        let mut db = build();
        let mut model = initial_model();
        faults::install(plan);
        let (now, in_flight) = run_ops(&mut db, &ops, &mut model);
        let st = faults::stats();
        faults::clear();
        let Some(hit) = st.crash_hit else {
            continue; // the trigger landed past the workload's horizon
        };
        let site = st.crash_site.expect("crash has a site").name();
        out.points_run += 1;
        out.crash_hits.insert(hit);
        out.crash_sites.insert(site);
        db.crash();
        recover(&mut db, now);
        if let Err(e) = verify(&mut db, &model, in_flight.map(|i| &ops[i])) {
            out.failures
                .push(format!("crash at hit {hit} ({site}): {e}"));
        }
    }
    if b.strict {
        assert!(
            out.crash_hits.len() >= 40,
            "sweep must cover >=40 distinct crash points, got {}",
            out.crash_hits.len()
        );
    }
    out
}

fn assert_clean(out: &SweepOutcome, design: &str, expect_sites: &[&str]) {
    assert!(
        out.failures.is_empty(),
        "{design}: {} of {} crash points failed recovery:\n{}",
        out.failures.len(),
        out.points_run,
        out.failures.join("\n")
    );
    for s in expect_sites {
        assert!(
            out.crash_sites.contains(s),
            "{design}: sweep never crashed at {s} (covered: {:?})",
            out.crash_sites
        );
    }
}

// ---------------------------------------------------------------------------
// The sweeps, one per design.
// ---------------------------------------------------------------------------

#[test]
fn sweep_vanilla_dram_replay() {
    let out = sweep_design(build_vanilla, |db, t| {
        recover_replay(db, "vanilla", t);
    });
    assert_clean(&out, "vanilla", &["wal_flush", "storage_write"]);
}

#[test]
fn sweep_rdma_based_replay() {
    let out = sweep_design(build_rdma, |db, t| {
        recover_replay(db, "rdma-based", t);
    });
    assert_clean(
        &out,
        "rdma-based",
        &["wal_flush", "rdma_read", "rdma_write"],
    );
}

#[test]
fn sweep_polarrecv() {
    let out = sweep_design(build_cxl, |db, t| {
        recover_polar(db, t);
    });
    assert_clean(
        &out,
        "polarrecv",
        &[
            "wal_flush",
            "clflush",
            "cxl_read",
            "cxl_nt_store",
            "storage_write",
        ],
    );
}

/// The eviction policy decides which pages are CXL-resident (and
/// therefore which bytes recovery can trust) at every crash point — the
/// whole sweep must stay clean under CLOCK and 2Q, not just LRU.
#[test]
fn sweep_polarrecv_clock_policy() {
    let out = sweep_design(
        || build_cxl_policy(PolicyKind::Clock),
        |db, t| {
            recover_polar(db, t);
        },
    );
    assert_clean(
        &out,
        "polarrecv-clock",
        &["wal_flush", "clflush", "cxl_read", "cxl_nt_store"],
    );
}

#[test]
fn sweep_polarrecv_2q_policy() {
    let out = sweep_design(
        || build_cxl_policy(PolicyKind::TwoQ),
        |db, t| {
            recover_polar(db, t);
        },
    );
    assert_clean(
        &out,
        "polarrecv-2q",
        &["wal_flush", "clflush", "cxl_read", "cxl_nt_store"],
    );
}

#[test]
fn sweep_polarrecv_nometa() {
    let out = sweep_design(build_cxl, |db, t| {
        let report = polardb_cxl_repro::polarcxlmem::recovery::polar_recv_with(
            &mut db.pool,
            &mut db.wal,
            t,
            false,
        );
        let (table, _) = BTree::open(&mut db.pool, db.table.meta_page, report.done);
        db.table = table;
    });
    assert_clean(
        &out,
        "polarrecv-nometa",
        &["wal_flush", "clflush", "cxl_read", "cxl_nt_store"],
    );
}

// ---------------------------------------------------------------------------
// Multi-primary fusion cluster: node-granular crash sweep.
// ---------------------------------------------------------------------------

mod fusion_cluster {
    use super::*;
    use polardb_cxl_repro::memsim::CxlNodeConfig;
    use polardb_cxl_repro::polarcxlmem::{FencingPolicy, FusionServer, SharingNode};

    pub const CL_NODES: usize = 3;
    pub const PPG: u64 = 8; // pages per group (one private group per node + shared)
    pub const CL_PAGES: u64 = (CL_NODES as u64 + 1) * PPG;
    pub const CL_PAGE: u64 = 2048;
    pub const CL_OPS: usize = 160;

    pub fn ppage(node: usize, i: u64) -> PageId {
        PageId(node as u64 * PPG + i)
    }
    pub fn spage(i: u64) -> PageId {
        PageId(CL_NODES as u64 * PPG + i)
    }

    pub struct Cluster {
        pub cxl: Rc<RefCell<CxlPool>>,
        pub server: FusionServer,
        pub nodes: Vec<SharingNode>,
    }

    /// Build a 3-primary cluster (capture-mode caches, each node on its
    /// own host) and warm it: every node resolves its private group and
    /// the shared group, so active lists are known exactly.
    pub fn build() -> Cluster {
        let slots_bytes = CL_PAGES * CL_PAGE;
        let flags_bytes = CL_PAGES * 16;
        let epoch_base = slots_bytes + CL_NODES as u64 * flags_bytes;
        let pool = epoch_base + 4096;
        let cfgs: Vec<CxlNodeConfig> = (0..CL_NODES + 1)
            .map(|host| CxlNodeConfig {
                host,
                cache_bytes: 1 << 20,
                capture: true,
                remote_numa: false,
                direct_attach: false,
            })
            .collect();
        let cxl = Rc::new(RefCell::new(CxlPool::new(pool as usize, &cfgs)));
        let mut store = PageStore::with_page_size(CL_PAGES, CL_PAGE);
        for _ in 0..CL_PAGES {
            store.allocate();
        }
        let store = Rc::new(RefCell::new(store));
        let mut server =
            FusionServer::new(Rc::clone(&cxl), NodeId(CL_NODES), 0, CL_PAGES as u32, store);
        server.enable_fencing(FencingPolicy::Epoch, epoch_base);
        let mut nodes: Vec<SharingNode> = (0..CL_NODES)
            .map(|i| {
                let flag_base = slots_bytes + i as u64 * flags_bytes;
                server.register_node_fenced(NodeId(i), flag_base, SimTime::ZERO);
                SharingNode::new(NodeId(i), flag_base, CL_PAGE)
            })
            .collect();
        for (i, node) in nodes.iter_mut().enumerate() {
            for p in 0..PPG {
                node.access(&mut server, ppage(i, p), SimTime::ZERO);
                node.access(&mut server, spage(p), SimTime::ZERO);
            }
        }
        Cluster { cxl, server, nodes }
    }

    /// One scripted statement: `node` writes `val` to (page, off) or
    /// reads it back.
    #[derive(Debug, Clone, Copy)]
    pub struct ClOp {
        pub node: usize,
        pub page: PageId,
        pub off: u64,
        pub val: u8,
        pub write: bool,
    }

    pub fn gen_cluster_ops() -> Vec<ClOp> {
        let mut rng = SimRng::seed_from_u64(0xC105);
        (0..CL_OPS)
            .map(|_| {
                let node = rng.gen_range(0..CL_NODES as u32) as usize;
                let page = if rng.gen_range(0..100u32) < 30 {
                    spage(rng.gen_range(0..PPG))
                } else {
                    ppage(node, rng.gen_range(0..PPG))
                };
                ClOp {
                    node,
                    page,
                    off: 64 + rng.gen_range(0..8u64) * 64,
                    val: rng.gen_range(1..=250u32) as u8,
                    write: rng.gen_range(0..100u32) < 60,
                }
            })
            .collect()
    }
}

/// Node-granular crash sweep over the fusion cluster: at each swept
/// global hit, one primary dies (its CPU cache vanishes, its CXL lease
/// survives). The server fences + reclaims it; the script then verifies
/// every survivor-reachable row against the oracle, that the dead
/// node's X locks were cut, and that reclamation leaked no slots.
#[test]
fn sweep_fusion_cluster_node_crashes() {
    use fusion_cluster::*;
    use polardb_cxl_repro::simkit::{LockMode, LockTable};

    let ops = gen_cluster_ops();
    // Dry run for the hit horizon.
    let dry = {
        let mut cl = build();
        let mut t = SimTime::ZERO;
        faults::install(FaultPlan::count_only());
        for op in &ops {
            t = exec(&mut cl, op, t, None);
        }
        let s = faults::stats();
        faults::clear();
        s
    };
    let n = dry.total_hits();
    assert!(n > 0, "cluster script must reach injection sites");
    let points = (if std::env::var_os("FAULT_SWEEP_SMOKE").is_some() {
        6u64
    } else {
        24
    })
    .min(n);

    fn exec(
        cl: &mut fusion_cluster::Cluster,
        op: &fusion_cluster::ClOp,
        t: SimTime,
        model: Option<&mut BTreeMap<(PageId, u64), u8>>,
    ) -> SimTime {
        let node = &mut cl.nodes[op.node];
        if op.write {
            let t2 = node.write(&mut cl.server, op.page, op.off, &[op.val; 32], t);
            let t3 = node.publish(&mut cl.server, op.page, t2);
            if let Some(m) = model {
                m.insert((op.page, op.off), op.val);
            }
            t3
        } else {
            let mut buf = [0u8; 32];
            let t2 = node.read(&mut cl.server, op.page, op.off, &mut buf, t);
            if let Some(m) = model {
                let want = *m.get(&(op.page, op.off)).unwrap_or(&0);
                assert_eq!(buf, [want; 32], "read-your-cluster-writes");
            }
            t2
        }
    }

    let mut crashes_seen = 0u64;
    for i in 0..points {
        let victim = (i % CL_NODES as u64) as u32;
        // Build (warm) fault-free, then arm the plan — hit indices then
        // line up with the dry run's script-only horizon.
        let mut cl = build();
        faults::install(FaultPlan::count_only().with(
            Trigger::HitIndex(i * n / points),
            Action::CrashNode { node: victim },
        ));
        let mut locks: LockTable<PageId> = LockTable::new();
        let mut model: BTreeMap<(PageId, u64), u8> = BTreeMap::new();
        let mut t = SimTime::ZERO;
        let mut dead: Option<usize> = None;
        for op in &ops {
            if Some(op.node) == dead {
                continue; // the dead node's sessions are gone
            }
            if op.write {
                let (grant, _) = locks.acquire(op.page, t, LockMode::Exclusive, 0);
                t = grant;
            }
            t = exec(&mut cl, op, t, Some(&mut model));
            if op.write {
                locks.extend_exclusive(op.page, t);
            }
            // Death is declared at the statement boundary: the op that
            // was in flight completed, so there is no old-or-new
            // ambiguity in the oracle.
            if dead.is_none() {
                if let Some(nd) = faults::take_node_crash() {
                    let d = nd as usize;
                    dead = Some(d);
                    cl.cxl.borrow_mut().crash_node(NodeId(d));
                    t = cl.server.fence_node(NodeId(d), t);
                    for p in 0..PPG {
                        locks.reclaim(ppage(d, p), t);
                        locks.reclaim(spage(p), t);
                    }
                    t = cl.server.reclaim_node(NodeId(d), t);
                    // The dead node's private pages die with it (sole
                    // active): the oracle reverts them to storage state.
                    model.retain(|(page, _), _| {
                        !(ppage(d, 0).0..ppage(d, 0).0 + PPG).contains(&page.0)
                    });
                }
            }
        }
        let st = faults::stats();
        faults::clear();
        if st.node_crashes == 0 {
            continue; // trigger landed past the horizon
        }
        crashes_seen += 1;
        let d = dead.expect("declared");
        let stats = cl.server.stats();
        assert_eq!(stats.fenced_nodes, 1, "point {i}");
        // Every page the dead node was active on had its flags cleared;
        // its private pages (sole active) were recycled.
        assert_eq!(stats.reclaimed_flags, 2 * PPG, "point {i}");
        assert_eq!(stats.reclaimed_slots, PPG, "point {i}");
        // No residual lock holds: a fresh X grant on the dead node's
        // pages is immediate.
        for p in 0..PPG {
            let (grant, _) = locks.acquire(ppage(d, p), t, LockMode::Exclusive, 0);
            assert_eq!(grant, t, "leaked lock on dead page {p} at point {i}");
        }
        // Survivors' view matches the oracle (fresh reads through the
        // protocol — the capture cache makes stale bytes observable).
        let survivor = (0..CL_NODES).find(|&s| s != d).expect("a survivor");
        let mut failures = Vec::new();
        for (&(page, off), &want) in &model {
            let reader = if page.0 < CL_NODES as u64 * PPG {
                (page.0 / PPG) as usize // the private group's owner
            } else {
                survivor
            };
            let mut buf = [0u8; 32];
            t = cl.nodes[reader].read(&mut cl.server, page, off, &mut buf, t);
            if buf != [want; 32] {
                failures.push(format!(
                    "point {i}: page {} off {off}: got {:#x}, want {want:#x}",
                    page.0, buf[0]
                ));
            }
        }
        assert!(failures.is_empty(), "{}", failures.join("\n"));
        // The dead node's recycled pages refill from storage (zeros) —
        // the slot really was freed, not leaked.
        let mut buf = [0u8; 32];
        let _ = cl.nodes[survivor].read(&mut cl.server, ppage(d, 0), 64, &mut buf, t);
        assert_eq!(buf, [0u8; 32], "recycled page refills from storage");
        // Slot conservation: nothing leaked, whatever the crash point.
        assert_eq!(
            cl.server.pages_in_use() + cl.server.free_slots(),
            CL_PAGES as usize,
            "point {i}: DBP slot conservation"
        );
    }
    assert!(crashes_seen > 0, "no swept point actually killed a node");
}

// ---------------------------------------------------------------------------
// Lease-migration sweep: crash the coordinator at every migration fault
// site (plus between the two phases) and recover from the CXL journal.
// ---------------------------------------------------------------------------

mod migration {
    use super::*;
    use polardb_cxl_repro::memsim::CxlNodeConfig;
    use polardb_cxl_repro::polarcxlmem::{
        CxlMemoryManager, FusionServer, MigrationCoordinator, MigrationError, MigrationPlan,
        MigrationState, RecoveryAction, SharingNode,
    };

    pub const MG_TENANTS: usize = 2;
    pub const MG_EXTENTS: usize = 4;
    pub const MG_EPP: u64 = 4; // pages per extent
    pub const MG_PAGES: u64 = MG_EXTENTS as u64 * MG_EPP;
    pub const MG_PAGE: u64 = 2048;
    pub const MG_EXT_BYTES: u64 = MG_EPP * MG_PAGE;
    pub const MG_STMTS: usize = 150;

    pub struct MgWorld {
        pub server: FusionServer,
        pub nodes: Vec<SharingNode>,
        pub mgr: CxlMemoryManager,
        pub coord: MigrationCoordinator,
        /// Extent → owning tenant (the oracle's partition map).
        pub owners: Vec<usize>,
        pub journal_base: u64,
    }

    pub fn initial_owner(extent: usize) -> usize {
        usize::from(extent >= MG_EXTENTS / 2)
    }

    /// Two-tenant cluster with one lease per extent and a CXL-resident
    /// migration journal above the flag arrays. Warmed so every page is
    /// resolved by its owner before any fault plan is armed.
    pub fn build() -> MgWorld {
        let slots_bytes = MG_PAGES * MG_PAGE;
        let flags_bytes = MG_PAGES * 16;
        let journal_base = slots_bytes + MG_TENANTS as u64 * flags_bytes;
        let pool = journal_base + 4096;
        let cfgs: Vec<CxlNodeConfig> = (0..=MG_TENANTS)
            .map(|host| CxlNodeConfig {
                host,
                cache_bytes: 1 << 20,
                capture: true,
                remote_numa: false,
                direct_attach: false,
            })
            .collect();
        let cxl = Rc::new(RefCell::new(CxlPool::new(pool as usize, &cfgs)));
        let mut store = PageStore::with_page_size(MG_PAGES, MG_PAGE);
        for _ in 0..MG_PAGES {
            store.allocate();
        }
        let store = Rc::new(RefCell::new(store));
        let mut server = FusionServer::new(
            Rc::clone(&cxl),
            NodeId(MG_TENANTS),
            0,
            MG_PAGES as u32,
            store,
        );
        let mut nodes: Vec<SharingNode> = (0..MG_TENANTS)
            .map(|i| {
                let flag_base = slots_bytes + i as u64 * flags_bytes;
                server.register_node(NodeId(i), flag_base);
                SharingNode::new(NodeId(i), flag_base, MG_PAGE)
            })
            .collect();
        let mut mgr = CxlMemoryManager::new(MG_PAGES * MG_PAGE);
        for e in 0..MG_EXTENTS {
            let owner = initial_owner(e);
            let (lease, _) = mgr
                .allocate(NodeId(owner), MG_EXT_BYTES, SimTime::ZERO)
                .expect("pool sized for every extent");
            assert_eq!(lease.offset, e as u64 * MG_EXT_BYTES);
            for p in 0..MG_EPP {
                nodes[owner].access(&mut server, PageId(e as u64 * MG_EPP + p), SimTime::ZERO);
            }
        }
        let coord = MigrationCoordinator::new(NodeId(MG_TENANTS), journal_base);
        MgWorld {
            server,
            nodes,
            mgr,
            coord,
            owners: (0..MG_EXTENTS).map(initial_owner).collect(),
            journal_base,
        }
    }

    /// One scripted step. Statements resolve their extent against the
    /// partition map *at execution time*, so the same script is valid
    /// whichever side of a migration it lands on.
    #[derive(Debug, Clone, Copy)]
    pub enum MgOp {
        Stmt {
            tenant: usize,
            /// Index into the tenant's owned-extent set (mod its size).
            slot: usize,
            page_in_ext: u64,
            off: u64,
            val: u8,
            write: bool,
        },
        Prepare {
            extent: usize,
            recipient: usize,
        },
        Commit,
    }

    /// Deterministic script: both tenants read/write their own extents,
    /// with two live migrations dropped in — each with a window of
    /// statements between PREPARE and COMMIT so the write-protected
    /// range is genuinely exercised mid-flight.
    pub fn gen_script() -> Vec<MgOp> {
        let mut rng = SimRng::seed_from_u64(0xE1A5);
        let mut script = Vec::with_capacity(MG_STMTS + 4);
        for i in 0..MG_STMTS {
            match i {
                50 => script.push(MgOp::Prepare {
                    extent: 1,
                    recipient: 1,
                }),
                58 => script.push(MgOp::Commit),
                100 => script.push(MgOp::Prepare {
                    extent: 2,
                    recipient: 0,
                }),
                110 => script.push(MgOp::Commit),
                _ => {}
            }
            script.push(MgOp::Stmt {
                tenant: (i % MG_TENANTS),
                slot: rng.gen_range(0..16u64) as usize,
                page_in_ext: rng.gen_range(0..MG_EPP),
                off: 64 + rng.gen_range(0..8u64) * 64,
                val: rng.gen_range(1..=250u32) as u8,
                write: rng.gen_range(0..100u32) < 55,
            });
        }
        script
    }

    pub type MgModel = BTreeMap<(u64, u64), u8>;

    /// Execute the script from the top. Stops early when a migration
    /// step dies at a fault gate (returning the typed crash) or when
    /// `stop_before_commit` names the 0-based index of a COMMIT op to
    /// die in front of — the coordinator-crash-between-phases point.
    /// The model records completed, published writes only; writes
    /// refused by the write-protect window are (correctly) absent.
    pub fn run_script(
        w: &mut MgWorld,
        script: &[MgOp],
        model: &mut MgModel,
        stop_before_commit: Option<usize>,
    ) -> (SimTime, Option<MigrationError>) {
        let mut t = SimTime::ZERO;
        let mut commits_seen = 0usize;
        let mut inflight: Option<(usize, usize)> = None; // (extent, recipient)
        for op in script {
            match *op {
                MgOp::Stmt {
                    tenant,
                    slot,
                    page_in_ext,
                    off,
                    val,
                    write,
                } => {
                    let owned: Vec<usize> =
                        (0..MG_EXTENTS).filter(|&e| w.owners[e] == tenant).collect();
                    let e = owned[slot % owned.len()];
                    let page = PageId(e as u64 * MG_EPP + page_in_ext);
                    if write {
                        if w.coord.write_protected(page) {
                            continue; // refused: the range is migrating
                        }
                        let t2 = w.nodes[tenant].write(&mut w.server, page, off, &[val; 32], t);
                        t = w.nodes[tenant].publish(&mut w.server, page, t2);
                        model.insert((page.0, off), val);
                    } else {
                        let mut buf = [0u8; 32];
                        t = w.nodes[tenant].read(&mut w.server, page, off, &mut buf, t);
                        let want = *model.get(&(page.0, off)).unwrap_or(&0);
                        assert_eq!(buf, [want; 32], "read-your-writes at page {}", page.0);
                    }
                }
                MgOp::Prepare { extent, recipient } => {
                    let donor = w.owners[extent];
                    let lease = w
                        .mgr
                        .lease_at(extent as u64 * MG_EXT_BYTES, MG_EXT_BYTES)
                        .expect("extent lease");
                    let plan = MigrationPlan {
                        donor: NodeId(donor),
                        recipient: NodeId(recipient),
                        from: PageId(extent as u64 * MG_EPP),
                        count: MG_EPP,
                        lease,
                    };
                    match w.coord.prepare(&mut w.server, plan, t) {
                        Ok(end) => {
                            t = end;
                            inflight = Some((extent, recipient));
                        }
                        Err(e) => return (t, Some(e)),
                    }
                }
                MgOp::Commit => {
                    if stop_before_commit == Some(commits_seen) {
                        // The coordinator dies between the phases: the
                        // PREPARED intent sits in the journal.
                        return (t, Some(MigrationError::NotInFlight));
                    }
                    commits_seen += 1;
                    let Some((extent, recipient)) = inflight.take() else {
                        continue; // this migration was rolled back earlier
                    };
                    let donor = w.owners[extent];
                    let (a, b) = w.nodes.split_at_mut(donor.max(recipient));
                    let (d, r) = if donor < recipient {
                        (&mut a[donor], &mut b[0])
                    } else {
                        (&mut b[0], &mut a[recipient])
                    };
                    match w.coord.commit(&mut w.server, &mut w.mgr, d, r, t) {
                        Ok(end) => {
                            t = end;
                            w.owners[extent] = recipient;
                        }
                        Err(e) => return (t, Some(e)),
                    }
                }
            }
        }
        (t, None)
    }

    /// Crash recovery with a *fresh* coordinator (the old one died):
    /// read the journal, replay or roll back, and fold the outcome into
    /// the oracle's partition map. Asserts the action matches the
    /// journalled state and that recovery is idempotent.
    pub fn recover_and_settle(w: &mut MgWorld, t: SimTime) -> (RecoveryAction, SimTime) {
        faults::clear();
        let mut coord = MigrationCoordinator::new(NodeId(MG_TENANTS), w.journal_base);
        let (pre, _) = coord.read_journal(&w.server, t);
        let (action, t) = coord
            .recover(&mut w.server, &mut w.mgr, &mut w.nodes, t)
            .expect("recovery runs fault-free");
        match pre.state {
            MigrationState::Prepared => {
                assert!(
                    matches!(action, RecoveryAction::RolledBack { .. }),
                    "PREPARED must roll back, got {action:?}"
                );
            }
            MigrationState::Committing => {
                assert!(
                    matches!(action, RecoveryAction::RolledForward { .. }),
                    "COMMITTING must roll forward, got {action:?}"
                );
                // The commit point passed: the new partition stands.
                let e = (pre.from.0 / MG_EPP) as usize;
                w.owners[e] = pre.recipient.0;
            }
            _ => {
                assert!(
                    matches!(action, RecoveryAction::Nothing),
                    "quiescent journal must recover to Nothing, got {action:?}"
                );
            }
        }
        let (again, t) = coord
            .recover(&mut w.server, &mut w.mgr, &mut w.nodes, t)
            .expect("second recovery");
        assert!(
            matches!(again, RecoveryAction::Nothing),
            "recovery must be idempotent, got {again:?}"
        );
        w.coord = coord;
        (action, t)
    }

    /// The sweep oracle: exactly-old-or-new partition, lease
    /// conservation, slot conservation, no extent served by two
    /// tenants, and no lost committed write.
    pub fn verify(w: &mut MgWorld, model: &MgModel, point: &str) -> SimTime {
        w.mgr.check_invariants();
        assert_eq!(
            w.server.pages_in_use() + w.server.free_slots(),
            MG_PAGES as usize,
            "{point}: DBP slot conservation"
        );
        let mut seen = BTreeSet::new();
        for e in 0..MG_EXTENTS {
            let lease = w
                .mgr
                .lease_at(e as u64 * MG_EXT_BYTES, MG_EXT_BYTES)
                .unwrap_or_else(|| panic!("{point}: extent {e} lost its lease"));
            assert_eq!(
                lease.client,
                NodeId(w.owners[e]),
                "{point}: extent {e} lease torn between partitions"
            );
            assert!(
                seen.insert(lease.offset),
                "{point}: extent {e} leased twice"
            );
        }
        // No lost committed write: every published byte is readable by
        // the extent's post-recovery owner through the protocol.
        let mut t = SimTime::ZERO;
        for (&(page, off), &want) in model {
            let owner = w.owners[(page / MG_EPP) as usize];
            let mut buf = [0u8; 32];
            t = w.nodes[owner].read(&mut w.server, PageId(page), off, &mut buf, t);
            assert_eq!(
                buf, [want; 32],
                "{point}: lost committed write at page {page} off {off}"
            );
        }
        t
    }

    /// Post-recovery liveness: every extent's owner can still write and
    /// read back — the partition is not just consistent but serving.
    pub fn verify_live(w: &mut MgWorld, t: SimTime, point: &str) {
        let mut t = t;
        for e in 0..MG_EXTENTS {
            let owner = w.owners[e];
            let page = PageId(e as u64 * MG_EPP);
            let t2 = w.nodes[owner].write(&mut w.server, page, 128, &[0xAB; 32], t);
            let t3 = w.nodes[owner].publish(&mut w.server, page, t2);
            let mut buf = [0u8; 32];
            t = w.nodes[owner].read(&mut w.server, page, 128, &mut buf, t3);
            assert_eq!(buf, [0xAB; 32], "{point}: extent {e} not serving");
        }
    }
}

/// ALICE-style sweep over the lease-migration protocol: a scripted
/// two-tenant workload runs two live migrations (with statements inside
/// each PREPARE→COMMIT window); the coordinator is crashed at every hit
/// of every migration fault site, a fresh coordinator recovers from the
/// CXL journal, and the oracle checks the partition is exactly
/// old-or-new with no lost committed write.
#[test]
fn sweep_migration_crash_points() {
    use migration::*;
    use polardb_cxl_repro::polarcxlmem::MigrationError;

    let script = gen_script();
    // Dry run: per-site hit counts for the migration sites.
    let dry = {
        let mut w = build();
        let mut model = MgModel::new();
        faults::install(FaultPlan::count_only());
        let (_, err) = run_script(&mut w, &script, &mut model, None);
        let s = faults::stats();
        faults::clear();
        assert!(err.is_none(), "count-only run must complete: {err:?}");
        s
    };
    let mig_sites = [
        FaultSite::MigPrepare,
        FaultSite::MigFlush,
        FaultSite::MigReassign,
        FaultSite::MigAdopt,
        FaultSite::MigRetire,
    ];
    for site in mig_sites {
        assert!(
            dry.hits[site as usize] > 0,
            "script never reaches {}",
            site.name()
        );
    }

    // Sweep every hit of every migration site (the counts are small
    // enough to be exhaustive, no striding needed).
    let mut swept = 0usize;
    let mut forward = 0usize;
    let mut back = 0usize;
    for site in mig_sites {
        for j in 0..dry.hits[site as usize] {
            let point = format!("{}[{j}]", site.name());
            let mut w = build();
            let mut model = MgModel::new();
            faults::install(FaultPlan::count_only().with(Trigger::SiteHit(site, j), Action::Crash));
            let (t, err) = run_script(&mut w, &script, &mut model, None);
            let st = faults::stats();
            assert!(
                matches!(err, Some(MigrationError::Crashed { .. })),
                "{point}: expected a coordinator crash, got {err:?}"
            );
            assert_eq!(st.crash_site, Some(site), "{point}");
            let (action, _) = recover_and_settle(&mut w, t);
            match action {
                polardb_cxl_repro::polarcxlmem::RecoveryAction::RolledForward { .. } => {
                    forward += 1
                }
                polardb_cxl_repro::polarcxlmem::RecoveryAction::RolledBack { .. } => back += 1,
                _ => {}
            }
            let t = verify(&mut w, &model, &point);
            verify_live(&mut w, t, &point);
            swept += 1;
        }
    }
    assert!(swept >= 15, "sweep too thin: {swept} points");
    assert!(back > 0, "no swept point exercised rollback");
    assert!(forward > 0, "no swept point exercised roll-forward");

    // Coordinator crash *between* the phases: PREPARE journalled, the
    // process dies before COMMIT ever starts. Recovery must roll back
    // and the old partition must stand, for each scripted migration.
    for k in 0..2 {
        let point = format!("between-phases[{k}]");
        let mut w = build();
        let mut model = MgModel::new();
        faults::install(FaultPlan::count_only());
        let (t, err) = run_script(&mut w, &script, &mut model, Some(k));
        faults::clear();
        assert!(err.is_some(), "{point}: script must stop at the commit");
        let before = w.owners.clone();
        let (action, _) = recover_and_settle(&mut w, t);
        assert!(
            matches!(
                action,
                polardb_cxl_repro::polarcxlmem::RecoveryAction::RolledBack { .. }
            ),
            "{point}: got {action:?}"
        );
        assert_eq!(w.owners, before, "{point}: partition must be exactly-old");
        let t = verify(&mut w, &model, &point);
        verify_live(&mut w, t, &point);
    }
}

/// After a crash + recovery mid-script, the *rest* of the script —
/// including a second, later migration — must run to completion on the
/// recovered partition. Crash-safety is not just consistency at the
/// point of death; the system keeps re-partitioning afterwards.
#[test]
fn migration_recovery_resumes_the_script() {
    use migration::*;
    use polardb_cxl_repro::polarcxlmem::MigrationError;

    let script = gen_script();
    // Crash the first migration's adopt step, recover, then run the
    // remainder of the script (second migration included) fault-free.
    let mut w = build();
    let mut model = MgModel::new();
    faults::install(
        FaultPlan::count_only().with(Trigger::SiteHit(FaultSite::MigAdopt, 0), Action::Crash),
    );
    let (t, err) = run_script(&mut w, &script, &mut model, None);
    assert!(matches!(err, Some(MigrationError::Crashed { .. })));
    let (_, _) = recover_and_settle(&mut w, t);
    // First migration rolled forward at adopt: extent 1 now tenant 1's.
    assert_eq!(w.owners, vec![0, 1, 1, 1]);
    // Replay the whole script on the recovered world: already-moved
    // extents make the first PREPARE a WrongOwner no-op path, so drive
    // only the tail (from the first commit onwards) to keep it simple —
    // the second migration must succeed end to end.
    let tail: Vec<MgOp> = script
        .iter()
        .copied()
        .skip_while(|op| !matches!(op, MgOp::Commit))
        .skip(1)
        .collect();
    let (_, err) = run_script(&mut w, &tail, &mut model, None);
    assert!(err.is_none(), "tail must complete: {err:?}");
    assert_eq!(
        w.owners,
        vec![0, 1, 0, 1],
        "the second migration moved extent 2 back to tenant 0"
    );
    let t = verify(&mut w, &model, "resume");
    verify_live(&mut w, t, "resume");
}

/// Teeth: the deliberately broken trust policy must corrupt at least
/// one partial-clflush point. This proves the sweep can actually catch
/// a recovery bug — a sweep that passes everything proves nothing.
#[test]
fn broken_trust_policy_fails_the_sweep() {
    let ops = gen_ops();
    let dry = dry_run(&build_cxl, &ops);
    let hc = dry.hits[FaultSite::Clflush as usize];
    assert!(hc > 0, "the CXL design must reach clflush sites");
    let points = (if std::env::var_os("FAULT_SWEEP_SMOKE").is_some() {
        8u64
    } else {
        24
    })
    .min(hc);
    // Expected-failure points panic inside the torn tree; keep the test
    // log quiet while probing them.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut broken = 0usize;
    let mut run = 0usize;
    for j in 0..points {
        let plan = FaultPlan::count_only().with(
            Trigger::SiteHit(FaultSite::Clflush, j * hc / points),
            Action::PartialClflush {
                keep_lines: 1 + (j % 2),
            },
        );
        let mut db = build_cxl();
        let mut model = initial_model();
        faults::install(plan);
        let (now, in_flight) = run_ops(&mut db, &ops, &mut model);
        let st = faults::stats();
        faults::clear();
        if st.crash_hit.is_none() {
            continue;
        }
        run += 1;
        db.crash();
        let bad = catch_unwind(AssertUnwindSafe(|| {
            recover_polar_policy(&mut db, TrustPolicy::TrustLatched, now);
            verify(&mut db, &model, in_flight.map(|i| &ops[i])).is_err()
        }))
        .unwrap_or(true);
        if bad {
            broken += 1;
        }
    }
    std::panic::set_hook(hook);
    assert!(run > 0, "no partial-clflush point fired");
    assert!(
        broken > 0,
        "TrustLatched recovered all {run} partial-clflush points consistently — \
         the sweep has no teeth"
    );
}
