//! End-to-end sharing integration: the full multi-primary stack (lock
//! service + fusion server + coherency protocol + capture-mode caches)
//! on both systems, checking the paper's qualitative claims and the
//! protocol's observable correctness.

use polardb_cxl_repro::polarcxlmem::{FusionServer, SharingNode};
use polardb_cxl_repro::prelude::*;
use polardb_cxl_repro::workloads::sharing::{point_update_gen, read_write_gen, GroupLayout};
use simkit::{LockMode, LockTable};
use std::cell::RefCell;
use std::rc::Rc;

fn tiny(system: SharingSystem, nodes: usize, pct: u32, rw: bool) -> SharingResult {
    let mut c = SharingConfig::standard(system, nodes);
    c.layout.rows_per_group = 2_000;
    c.duration = SimTime::from_millis(25);
    c.workers_per_node = 4;
    let layout = c.layout;
    if rw {
        run_sharing(&c, read_write_gen(layout, pct))
    } else {
        run_sharing(&c, point_update_gen(layout, pct))
    }
}

#[test]
fn cxl_beats_rdma_across_sharing_levels() {
    for pct in [20u32, 60, 100] {
        let c = tiny(SharingSystem::Cxl, 4, pct, false);
        let r = tiny(SharingSystem::Rdma { lbp_fraction: 0.3 }, 4, pct, false);
        assert!(
            c.metrics.qps > r.metrics.qps,
            "{pct}% shared: cxl {} <= rdma {}",
            c.metrics.qps,
            r.metrics.qps
        );
    }
}

#[test]
fn more_nodes_amplify_the_gap_under_read_write() {
    let c8 = tiny(SharingSystem::Cxl, 8, 60, true);
    let r8 = tiny(SharingSystem::Rdma { lbp_fraction: 0.3 }, 8, 60, true);
    let gap8 = c8.metrics.qps / r8.metrics.qps;
    assert!(gap8 > 1.0, "gap8 {gap8}");
}

#[test]
fn bigger_lbp_narrows_but_does_not_close_the_gap() {
    // Figure 13's claim: even LBP-100% loses to PolarCXLMem once
    // synchronization dominates.
    let cxl = tiny(SharingSystem::Cxl, 4, 80, false);
    let small = tiny(SharingSystem::Rdma { lbp_fraction: 0.1 }, 4, 80, false);
    let big = tiny(SharingSystem::Rdma { lbp_fraction: 1.0 }, 4, 80, false);
    assert!(big.metrics.qps >= small.metrics.qps * 0.95);
    assert!(
        cxl.metrics.qps > big.metrics.qps,
        "cxl {} vs lbp100 {}",
        cxl.metrics.qps,
        big.metrics.qps
    );
}

/// The background recycler under DBP pressure: a fusion server whose
/// slot pool is much smaller than the dataset keeps recycling LRU slots
/// (setting removal flags); nodes must transparently re-request and
/// still read correct data.
#[test]
fn dbp_pressure_recycles_without_corruption() {
    use polardb_cxl_repro::memsim::calib::PAGE_SIZE;
    let layout = GroupLayout {
        groups: 1,
        rows_per_group: 2_000,
    };
    let total_pages = layout.total_pages();
    let slots = (total_pages / 4).max(2) as u32; // 4x oversubscribed DBP
    let cfg = polardb_cxl_repro::memsim::CxlNodeConfig {
        host: 0,
        cache_bytes: 1 << 20,
        capture: true,
        remote_numa: false,
        direct_attach: false,
    };
    let mut cfgs = vec![cfg; 3];
    for (h, c) in cfgs.iter_mut().enumerate() {
        c.host = h;
    }
    let pool_size = slots as u64 * PAGE_SIZE + 2 * total_pages * 16 + 4096;
    let cxl = Rc::new(RefCell::new(CxlPool::new(pool_size as usize, &cfgs)));
    let mut store = PageStore::new(total_pages);
    for p in 0..total_pages {
        store.allocate();
        // Row r's slot holds r as a u64 at a fixed offset.
        let mut page = vec![0u8; PAGE_SIZE as usize];
        page[0..8].copy_from_slice(&p.to_le_bytes());
        store.raw_write_page(PageId(p), &page);
    }
    let store = Rc::new(RefCell::new(store));
    let mut server = FusionServer::new(Rc::clone(&cxl), NodeId(2), 0, slots, store);
    let mut nodes: Vec<SharingNode> = (0..2)
        .map(|i| {
            let flag_base = slots as u64 * PAGE_SIZE + i as u64 * total_pages * 16;
            server.register_node(NodeId(i), flag_base);
            SharingNode::new(NodeId(i), flag_base, PAGE_SIZE)
        })
        .collect();
    let mut t = SimTime::ZERO;
    // Sweep all pages repeatedly from both nodes with background
    // recycling interleaved: every page read must return its own id.
    for round in 0..3u64 {
        for p in 0..total_pages {
            let node = ((p + round) % 2) as usize;
            let mut buf = [0u8; 8];
            t = nodes[node].read(&mut server, PageId(p), 0, &mut buf, t);
            assert_eq!(
                u64::from_le_bytes(buf),
                p,
                "round {round}: page {p} corrupted under recycling"
            );
            if p % 7 == 0 {
                t = server.background_recycle(2, slots as usize / 2, t);
            }
        }
    }
    assert!(
        server.stats().recycles > 0,
        "pressure must trigger recycling"
    );
    assert!(
        nodes[0].stats().removal_reloads + nodes[1].stats().removal_reloads > 0,
        "nodes must observe removal flags"
    );
}

/// Serializes writers through the distributed lock and checks that
/// every read on every node observes the latest published write — the
/// protocol-level linearizability check on top of capture-mode caches.
#[test]
fn cross_node_reads_always_see_committed_writes() {
    let layout = GroupLayout {
        groups: 1,
        rows_per_group: 500,
    };
    let total_pages = layout.total_pages();
    let cfg = polardb_cxl_repro::memsim::CxlNodeConfig {
        host: 0,
        cache_bytes: 1 << 20,
        capture: true,
        remote_numa: false,
        direct_attach: false,
    };
    let mut cfgs = vec![cfg; 4]; // 3 DB nodes + server
    for (h, c) in cfgs.iter_mut().enumerate() {
        c.host = h;
    }
    let pool_size = total_pages * 16384 + 3 * total_pages * 16 + 4096;
    let cxl = Rc::new(RefCell::new(CxlPool::new(pool_size as usize, &cfgs)));
    let mut store = PageStore::new(total_pages);
    for _ in 0..total_pages {
        store.allocate();
    }
    let store = Rc::new(RefCell::new(store));
    let mut server = FusionServer::new(Rc::clone(&cxl), NodeId(3), 0, total_pages as u32, store);
    let mut nodes: Vec<SharingNode> = (0..3)
        .map(|i| {
            let flag_base = total_pages * 16384 + i as u64 * total_pages * 16;
            server.register_node(NodeId(i), flag_base);
            SharingNode::new(NodeId(i), flag_base, 16384)
        })
        .collect();

    let mut locks: LockTable<PageId> = LockTable::new();
    let mut t = SimTime::ZERO;
    let mut expect = [0u64; 8]; // per row slot: last committed value
    for step in 0..200u64 {
        let writer = (step % 3) as usize;
        let slot = (step % 8) as usize;
        let (page, off) = layout.locate(0, slot as u64 * 60);
        // Writer: lock, write, publish, release.
        let (grant, _) = locks.acquire(page, t, LockMode::Exclusive, 0);
        let val = step + 1;
        let t2 = nodes[writer].write(&mut server, page, off as u64, &val.to_le_bytes(), grant);
        let t3 = nodes[writer].publish(&mut server, page, t2);
        locks.extend_exclusive(page, t3);
        expect[slot] = val;
        t = t3;
        // All nodes read after the lock is free: must see the new value.
        #[allow(clippy::needless_range_loop)]
        for reader in 0..3 {
            let (grant, _) = locks.acquire(page, t, LockMode::Shared, 0);
            let mut buf = [0u8; 8];
            let t4 = nodes[reader].read(&mut server, page, off as u64, &mut buf, grant);
            locks.extend_shared(page, t4);
            t = t.max(t4);
            assert_eq!(
                u64::from_le_bytes(buf),
                expect[slot],
                "step {step}: node {reader} read a stale value"
            );
        }
    }
}
